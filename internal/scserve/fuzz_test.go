package scserve

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/faultnet"
	"scverify/internal/trace"
)

// FuzzFrameParser feeds arbitrary bytes to the frame reader: no panics,
// and every parsed frame respects the payload limit.
func FuzzFrameParser(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameHello, 0x00})
	f.Add([]byte{frameSymbols, 0x05, 1, 2, 3, 4, 5})
	f.Add([]byte{frameEnd, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add(append([]byte{frameVerdict, 0x03}, 0, 1, 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		const max = 1 << 10
		for {
			typ, payload, err := readFrame(br, max)
			if err != nil {
				if err == io.EOF && len(payload) != 0 {
					t.Fatal("EOF with payload")
				}
				return
			}
			if len(payload) > max {
				t.Fatalf("frame type %#x: payload %d exceeds limit", typ, len(payload))
			}
		}
	})
}

// FuzzFrameRoundTrip: whatever writeFrame emits, readFrame returns
// verbatim, including back-to-back frames.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), []byte{}, byte(2), []byte{9, 9})
	f.Fuzz(func(t *testing.T, typ1 byte, p1 []byte, typ2 byte, p2 []byte) {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrame(bw, typ1, p1); err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(bw, typ2, p2); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br := bufio.NewReader(&buf)
		for i, want := range []struct {
			typ     byte
			payload []byte
		}{{typ1, p1}, {typ2, p2}} {
			typ, payload, err := readFrame(br, len(p1)+len(p2))
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if typ != want.typ || !bytes.Equal(payload, want.payload) {
				t.Fatalf("frame %d: got (%#x, %v), want (%#x, %v)", i, typ, payload, want.typ, want.payload)
			}
		}
		if _, _, err := readFrame(br, 1<<10); err != io.EOF {
			t.Fatalf("trailing read: %v, want io.EOF", err)
		}
	})
}

// FuzzHelloAndVerdictParsers: arbitrary payloads never panic the parsers,
// and well-formed values survive a round trip.
func FuzzHelloAndVerdictParsers(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(appendHello(nil, SyntheticHeader()), appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Msg: "x"}))
	f.Add([]byte{}, appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 1, CycleLen: 2, Msg: "cycle"}))
	// Grid-relevant seeds: the payload shapes the scgrid proxy relays and
	// the pool's probes parse — tokened and resuming hellos, the busy and
	// resume-miss verdict vocabularies, and unknown future flag bits on
	// both frames (which must fail cleanly, never misparse).
	f.Add(appendHello(nil, Header{K: 3, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}, Token: NewToken()}),
		appendVerdict(nil, BusyVerdict("server at session capacity (256)")))
	f.Add(appendHello(nil, Header{K: 3, Token: "t", Resume: true, AckSymbol: 64, AckOffset: 4096}),
		appendVerdict(nil, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: resumeMissPrefix + "unknown or expired session token"}))
	f.Add([]byte{protocolVersion, 3, 1, 1, 2, 1 << 6}, []byte{0x10 | byte(VerdictAccept), 0, 0})
	// Tiered-extension seeds: HelloFlagTiered and VerdictFlagTier are
	// allocated and handled now, so these payloads must parse and
	// round-trip. A tier extension cut short mid-field must still fail
	// cleanly (the second verdict payload ends after the witness fields).
	f.Add(appendHello(nil, Header{K: 3, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}, Tiered: true}),
		appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 1, CycleLen: 2,
			Tiered: true, Tier: 4, ReorderStore: 0, ReorderPast: 1, Msg: "cycle"}))
	f.Add([]byte{protocolVersion, 3, 1, 1, 2, descriptor.HelloFlagTiered | helloFlagNoValues},
		[]byte{descriptor.VerdictFlagTier | verdictFlagWitness | byte(VerdictReject), 4, 18, 2, 3})
	// An unknown-to-this-build tier code (a newer peer grew the ladder)
	// must parse and round-trip untouched.
	f.Add(appendHello(nil, Header{K: 3, Tiered: true, Token: "t"}),
		appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 0, Offset: 0,
			Tiered: true, Tier: maxTierCode - 1, ReorderStore: -1, ReorderPast: -1, Msg: "m"}))
	// Live-operations seeds: tenant-identified hellos (alone and riding
	// after the token/resume section) and the draining/quota refinements of
	// the busy verdict family. A tenant field cut short mid-ID must fail
	// cleanly, never misparse.
	f.Add(appendHello(nil, Header{K: 3, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}, Tenant: "alice"}),
		appendVerdict(nil, DrainingVerdict("backend draining; redirect or retry elsewhere")))
	f.Add(appendHello(nil, Header{K: 3, Token: "t", Resume: true, AckSymbol: 4, AckOffset: 64, Tenant: "bob"}),
		appendVerdict(nil, QuotaVerdict(`tenant "bob" at session cap (2)`)))
	f.Add([]byte{protocolVersion, 3, 1, 1, 2, helloFlagTenant, 3, 'a', 'b'}, // truncated tenant
		appendVerdict(nil, BusyVerdict("draining"))) // busy mentioning draining w/o the prefix
	f.Fuzz(func(t *testing.T, hp, vp []byte) {
		if h, err := parseHello(hp); err == nil {
			back, err2 := parseHello(appendHello(nil, h))
			if err2 != nil || back != h {
				t.Fatalf("hello round trip: %+v -> %+v (%v)", h, back, err2)
			}
		}
		if v, err := parseVerdict(vp); err == nil {
			back, err2 := parseVerdict(appendVerdict(nil, v))
			if err2 != nil || back != v {
				t.Fatalf("verdict round trip: %+v -> %+v (%v)", v, back, err2)
			}
		}
	})
}

// FuzzResumeFrame fuzzes the fault-tolerance wire extensions: the ack
// frame and the token/resume hello fields. Parsers must never panic, and
// any payload they accept must round-trip exactly. Headers without
// fault-tolerance fields must keep the legacy encoding prefix so old
// servers and clients interoperate byte-identically.
func FuzzResumeFrame(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(appendAck(nil, 0, 0), appendHello(nil, SyntheticHeader()))
	f.Add(appendAck(nil, 1024, 1<<20),
		appendHello(nil, Header{K: 3, Token: "resume-token", Resume: true, AckSymbol: 77, AckOffset: 512}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, []byte{1, 3, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, ap, hp []byte) {
		if sym, off, err := parseAck(ap); err == nil {
			s2, o2, err2 := parseAck(appendAck(nil, sym, off))
			if err2 != nil || s2 != sym || o2 != off {
				t.Fatalf("ack round trip: (%d, %d) -> (%d, %d), %v", sym, off, s2, o2, err2)
			}
			if sym < 0 || off < 0 {
				t.Fatalf("parseAck accepted negative position (%d, %d)", sym, off)
			}
		}
		if h, err := parseHello(hp); err == nil {
			back, err2 := parseHello(appendHello(nil, h))
			if err2 != nil || back != h {
				t.Fatalf("hello round trip: %+v -> %+v (%v)", h, back, err2)
			}
			if h.Token == "" && (h.Resume || h.AckSymbol != 0 || h.AckOffset != 0) {
				t.Fatalf("parseHello accepted resume fields without a token: %+v", h)
			}
			bare := h
			bare.Token, bare.Resume, bare.AckSymbol, bare.AckOffset = "", false, 0, 0
			legacy := appendHello(nil, bare)
			if with := appendHello(nil, h); !bytes.HasPrefix(with, legacy[:2]) {
				t.Fatalf("token hello does not share the legacy prefix: % x vs % x", with, legacy)
			}
		}
	})
}

// FuzzRetryClient runs the retrying client against a live server through
// a fault link that cuts the first connections at a fuzzed byte count,
// then goes clean. Whatever the cut points, the delivered verdict must be
// exactly correct — faults may only delay the answer, never change it.
func FuzzRetryClient(f *testing.F) {
	srv := New(Config{ReadTimeout: 5 * time.Second, AckInterval: 32})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	go srv.Serve(ln)
	f.Cleanup(func() { ln.Close() })
	addr := ln.Addr().String()

	f.Add(int64(1), uint16(40), uint8(30), uint8(1))
	f.Add(int64(42), uint16(2000), uint8(200), uint8(2))
	f.Add(int64(7), uint16(0), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, resetAfter uint16, size, faulty uint8) {
		stream, rejectIdx := SyntheticReject(int(size)%200 + 2)
		nFaulty := int64(faulty % 3) // at most 2 faulty dials, then clean

		var dials atomic.Int64
		dial := func(addr string, timeout time.Duration) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) <= nFaulty {
				return faultnet.Wrap(conn, faultnet.Config{
					Seed:            seed,
					WriteChunk:      7,
					ResetAfterBytes: int64(resetAfter) + 1,
				}, nil), nil
			}
			return conn, nil
		}
		rc := NewRetryClient(addr, RetryConfig{
			Timeout: 5 * time.Second, MaxAttempts: 8, BaseDelay: time.Millisecond,
			Seed: seed, PollEvery: 1 << 10, Dial: dial,
		})
		defer rc.Close()
		v, err := rc.Check(SyntheticHeader(), stream)
		if err != nil {
			t.Fatalf("faults must degrade to retries, not errors (seed=%d reset=%d faulty=%d): %v",
				seed, resetAfter, nFaulty, err)
		}
		if v.Code != VerdictReject || v.Symbol != rejectIdx || v.Offset != offsetOf(stream, rejectIdx) {
			t.Fatalf("wrong verdict through faults: %+v, want reject at symbol %d byte %d",
				v, rejectIdx, offsetOf(stream, rejectIdx))
		}
	})
}

// FuzzTierVerdictFrame fuzzes the tiered-verdict wire extension from the
// structured side: any tier code below the tolerance bound — including
// codes this build's ladder does not define, from a newer peer — must
// encode, parse back field-for-field, and re-encode byte-identically.
// Verdicts without the tier bit must stay byte-identical to the legacy
// encoding regardless of what the (ignored) tier arguments hold.
func FuzzTierVerdictFrame(f *testing.F) {
	f.Add(true, uint8(5), uint16(3), uint16(9), int64(17), uint8(2), uint8(4), "cycle")
	f.Add(true, uint8(0), uint16(0), uint16(0), int64(0), uint8(0), uint8(0), "")
	f.Add(true, uint8(63), uint16(1), uint16(0), int64(2), uint8(0), uint8(1), "m")
	f.Add(false, uint8(4), uint16(7), uint16(3), int64(44), uint8(1), uint8(2), "legacy")
	f.Fuzz(func(t *testing.T, tiered bool, tier uint8, rstore, rpast uint16, off int64, constraint, cyc uint8, msg string) {
		v := Verdict{
			Code: VerdictReject, Symbol: int(rstore) + int(rpast), Offset: off & (1<<40 - 1),
			Constraint: int(constraint) % (int(checker.ConstraintInternal) + 1), CycleLen: int(cyc), Msg: msg,
		}
		if tiered {
			v.Tiered = true
			v.Tier = int(tier) % maxTierCode
			// Reorder positions are either both absent (-1) or both set.
			if rstore%2 == 0 {
				v.ReorderStore, v.ReorderPast = -1, -1
			} else {
				v.ReorderStore, v.ReorderPast = int(rstore), int(rpast)
			}
		}
		enc := appendVerdict(nil, v)
		got, err := parseVerdict(enc)
		if err != nil {
			t.Fatalf("tier verdict rejected by parser: %+v: %v", v, err)
		}
		if got != v {
			t.Fatalf("tier verdict round trip: %+v -> %+v", v, got)
		}
		if again := appendVerdict(nil, got); !bytes.Equal(again, enc) {
			t.Fatalf("tier verdict re-encode differs: % x vs % x", again, enc)
		}
		if !tiered {
			legacy := appendVerdict(nil, Verdict{
				Code: v.Code, Symbol: v.Symbol, Offset: v.Offset,
				Constraint: v.Constraint, CycleLen: v.CycleLen, Msg: v.Msg,
			})
			if !bytes.Equal(enc, legacy) {
				t.Fatalf("untier-ed verdict encoding drifted from legacy: % x vs % x", enc, legacy)
			}
		}
	})
}

// FuzzServerConn throws an arbitrary client byte stream at a live
// connection handler: the server must neither panic nor leak the handler
// goroutine, whatever the bytes contain.
func FuzzServerConn(f *testing.F) {
	valid := func(stream descriptor.Stream) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		writeFrame(bw, frameHello, appendHello(nil, SyntheticHeader()))
		writeFrame(bw, frameSymbols, descriptor.Marshal(stream))
		writeFrame(bw, frameEnd, nil)
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(valid(SyntheticAccept(9)))
	rej, _ := SyntheticReject(2)
	f.Add(valid(rej))
	f.Add([]byte{frameHello, 0x00, frameEnd, 0x00})
	f.Add([]byte{frameStatsReq, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff})
	// Grid-relevant seeds: a tokened session (the ack/checkpoint path a
	// grid session drives), a resume hello against an empty checkpoint
	// store (the resume-miss answer scgrid recovers from), and a hello
	// from the future carrying unknown flag bits.
	tokened := func(stream descriptor.Stream) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		h := SyntheticHeader()
		h.Token = "fuzz-token"
		writeFrame(bw, frameHello, appendHello(nil, h))
		writeFrame(bw, frameSymbols, descriptor.Marshal(stream))
		writeFrame(bw, frameEnd, nil)
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(tokened(SyntheticAccept(9)))
	resuming := func() []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		h := SyntheticHeader()
		h.Token, h.Resume, h.AckSymbol, h.AckOffset = "fuzz-token", true, 4, 64
		writeFrame(bw, frameHello, appendHello(nil, h))
		writeFrame(bw, frameEnd, nil)
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(resuming())
	futureHello := append([]byte{frameHello, 6}, protocolVersion, SyntheticK, 1, 1, 2, 1<<5)
	f.Add(append(futureHello, frameEnd, 0x00))
	// A tiered session whose stream rejects: drives the server-side tier
	// adjudication path end to end.
	tiered := func(stream descriptor.Stream) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		h := SyntheticHeader()
		h.Tiered = true
		writeFrame(bw, frameHello, appendHello(nil, h))
		writeFrame(bw, frameSymbols, descriptor.Marshal(stream))
		writeFrame(bw, frameEnd, nil)
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(tiered(rej))
	f.Add(tiered(SyntheticAccept(9)))
	// Live-operations seeds: a tenant-identified session (the per-tenant
	// accounting path), the drain admin frame flipping the server into and
	// out of drain mode around a session, and a malformed drain payload.
	tenanted := func(stream descriptor.Stream) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		h := SyntheticHeader()
		h.Tenant = "fuzz-tenant"
		writeFrame(bw, frameHello, appendHello(nil, h))
		writeFrame(bw, frameSymbols, descriptor.Marshal(stream))
		writeFrame(bw, frameEnd, nil)
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(tenanted(SyntheticAccept(9)))
	drainCycle := func() []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		writeFrame(bw, frameDrain, []byte{1})
		writeFrame(bw, frameHello, appendHello(nil, SyntheticHeader()))
		writeFrame(bw, frameEnd, nil)
		writeFrame(bw, frameDrain, []byte{0})
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(drainCycle())
	f.Add([]byte{frameDrain, 0x00})             // empty drain payload
	f.Add([]byte{frameDrain, 0x01, 0x07})       // out-of-range drain mode
	f.Add([]byte{frameDrain, 0x02, 0x01, 0x99}) // trailing bytes after mode

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(Config{MaxFrame: 1 << 16, MaxK: 64, QueueBytes: 512, ReadTimeout: 2 * time.Second})
		server, client := net.Pipe()
		srv.wg.Add(1)
		go srv.handleConn(server)

		// Drain server responses so its writes never block the pipe.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			io.Copy(io.Discard, client)
		}()

		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		for len(data) > 0 { // dribble in smallish writes
			n := len(data)
			if n > 64 {
				n = 64
			}
			if _, err := client.Write(data[:n]); err != nil {
				break
			}
			data = data[n:]
		}
		client.Close()
		srv.wg.Wait()
		<-drained
	})
}
