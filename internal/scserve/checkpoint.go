package scserve

import (
	"container/list"
	"errors"
	"sync"
	"time"

	"scverify/internal/checker"
)

// errHeaderMismatch rejects a resume whose header disagrees with the
// checkpointed session's (different k, params, or value mode).
var errHeaderMismatch = errors.New("resume: header does not match the checkpointed session")

// The resume store is the server half of the fault-tolerance contract:
// sessions that announce a token get their checker cloned at symbol
// boundaries, and the newest clone is retained here so a client that
// loses its connection can replay only the unacked tail of its stream
// instead of the whole thing. Retention is bounded three ways — entry
// count, accounted bytes, and age — and an evicted or expired token
// degrades a resume attempt to a clean error, never to a wrong verdict:
// the checker is deterministic, so any verdict the server produces is a
// function of the exact byte prefix the client streamed, resumed or not.

// resumeEntry is one token's newest checkpoint, or — once the session
// delivered its verdict — the verdict itself, retained so a client that
// lost the connection just before reading it can recover it on resume.
// Entries are owned by the resumeStore and only ever reachable through
// it, so every field is guarded by the store's lock, not a lock of its
// own.
type resumeEntry struct {
	token string           // guarded by resumeStore.mu
	hdr   Header           // guarded by resumeStore.mu; bare: the checker-shaping fields a resume must match
	chk   *checker.Checker // guarded by resumeStore.mu
	sym   int              // guarded by resumeStore.mu
	off   int64            // guarded by resumeStore.mu
	done  *Verdict         // guarded by resumeStore.mu; non-nil once the session's verdict was determined
	cost  int64            // guarded by resumeStore.mu
	kick  func()           // guarded by resumeStore.mu; closes the conn of the session currently feeding this entry
	elem  *list.Element    // guarded by resumeStore.mu
	last  time.Time        // guarded by resumeStore.mu
}

// resumeSeed is what a resuming session starts from: a private clone of
// the stored checker positioned at (sym, off), or the stored verdict for
// an already-completed session.
type resumeSeed struct {
	chk  *checker.Checker
	sym  int
	off  int64
	done *Verdict
}

type resumeStore struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	ttl      time.Duration

	bytes   int64                   // guarded by mu
	entries map[string]*resumeEntry // guarded by mu
	lru     *list.List              // guarded by mu; front = least recently touched
}

func newResumeStore(max int, maxBytes int64, ttl time.Duration) *resumeStore {
	return &resumeStore{
		max:      max,
		maxBytes: maxBytes,
		ttl:      ttl,
		entries:  make(map[string]*resumeEntry),
		lru:      list.New(),
	}
}

// checkpointCost estimates an entry's memory footprint for the store's
// byte accounting. The checker's live state is Θ(k²) slots plus O(k)
// records; the constant is a deliberate overestimate so the accounting
// errs toward evicting early rather than ballooning.
func checkpointCost(h Header, done *Verdict) int64 {
	if done != nil {
		return 256 + int64(len(done.Msg))
	}
	k := int64(h.K)
	return 4096 + 64*k*k + 512*k
}

func (rs *resumeStore) removeLocked(e *resumeEntry) {
	delete(rs.entries, e.token)
	rs.lru.Remove(e.elem)
	rs.bytes -= e.cost
}

// evictLocked enforces the three retention limits, oldest-first, never
// touching keep (the entry just stored).
func (rs *resumeStore) evictLocked(keep *resumeEntry, now time.Time) {
	for rs.lru.Len() > 0 {
		e := rs.lru.Front().Value.(*resumeEntry)
		expired := rs.ttl > 0 && now.Sub(e.last) > rs.ttl
		over := len(rs.entries) > rs.max || rs.bytes > rs.maxBytes
		if e == keep || (!expired && !over) {
			return
		}
		rs.removeLocked(e)
	}
}

// put stores a checkpoint for token, replacing any older one. Offsets are
// monotonic per token: a stale session racing a resumed one can never
// move a checkpoint backwards past an ack the client already acted on.
// It reports whether the checkpoint was stored (and may thus be acked).
func (rs *resumeStore) put(token string, hdr Header, chk *checker.Checker, sym int, off int64, kick func()) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	now := time.Now()
	e := rs.entries[token]
	if e == nil {
		e = &resumeEntry{token: token}
		e.elem = rs.lru.PushBack(e)
		rs.entries[token] = e
	} else {
		if e.done == nil && off < e.off {
			return false
		}
		rs.lru.MoveToBack(e.elem)
		rs.bytes -= e.cost
	}
	e.hdr, e.chk, e.sym, e.off = hdr.bare(), chk, sym, off
	e.done, e.kick, e.last = nil, kick, now
	e.cost = checkpointCost(e.hdr, nil)
	rs.bytes += e.cost
	rs.evictLocked(e, now)
	return true
}

// finish records the session's verdict under the token and drops the
// checkpoint checker: a later resume replays the stored verdict instead
// of re-checking. The final (sym, off) position keeps resume acks
// monotonic for clients that missed the last ack.
func (rs *resumeStore) finish(token string, v Verdict, sym int, off int64) {
	if token == "" {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	now := time.Now()
	e := rs.entries[token]
	if e == nil {
		e = &resumeEntry{token: token}
		e.elem = rs.lru.PushBack(e)
		rs.entries[token] = e
	} else {
		rs.lru.MoveToBack(e.elem)
		rs.bytes -= e.cost
		if sym < e.sym {
			sym, off = e.sym, e.off
		}
	}
	done := v
	e.chk, e.done, e.kick, e.last = nil, &done, nil, now
	e.sym, e.off = sym, off
	e.cost = checkpointCost(e.hdr, e.done)
	rs.bytes += e.cost
	rs.evictLocked(e, now)
}

// take resolves a resume request: it returns a seed holding a private
// clone of the stored checker (or the stored verdict), after fencing off
// any session still feeding the entry. A nil seed with nil error means
// the token is unknown or expired; a non-nil error means the header does
// not match the checkpointed session.
func (rs *resumeStore) take(token string, hdr Header, kick func()) (*resumeSeed, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e := rs.entries[token]
	if e != nil && rs.ttl > 0 && time.Since(e.last) > rs.ttl {
		rs.removeLocked(e)
		e = nil
	}
	if e == nil {
		return nil, nil
	}
	if e.hdr != hdr.bare() {
		return nil, errHeaderMismatch
	}
	if old := e.kick; old != nil {
		old()
	}
	e.kick = kick
	e.last = time.Now()
	rs.lru.MoveToBack(e.elem)
	seed := &resumeSeed{sym: e.sym, off: e.off, done: e.done}
	if e.done == nil {
		seed.chk = e.chk.Clone()
	}
	return seed, nil
}

// drop removes a token's entry (a fresh hello reusing the token restarts
// the session from scratch), fencing off any session still feeding it.
func (rs *resumeStore) drop(token string) {
	if token == "" {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if e := rs.entries[token]; e != nil {
		if e.kick != nil {
			e.kick()
		}
		rs.removeLocked(e)
	}
}

// snapshot reports the store's gauges for Stats.
func (rs *resumeStore) snapshot() (entries int64, bytes int64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return int64(len(rs.entries)), rs.bytes
}
