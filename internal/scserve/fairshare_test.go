package scserve

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestAdmission builds an admission gate directly, bypassing New, so
// the dispatch order tests can drive grant/release deterministically.
func newTestAdmission(cfg Config) *admission {
	return newAdmission(cfg, new(atomic.Int64), new(atomic.Int64))
}

// park enqueues an admit() call in a goroutine and returns a channel
// carrying its eventual result, blocking until a waiter for that tenant
// is visibly parked (or the call resolved) so dispatch-order tests can
// arrange queue contents deterministically.
func park(t *testing.T, a *admission, tenant string) chan admitResult {
	t.Helper()
	res := make(chan admitResult, 1)
	go func() { res <- a.admit(tenant) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		a.mu.Lock()
		parked := false
		for _, w := range a.queue {
			if w.tenant == tenant {
				parked = true
				break
			}
		}
		a.mu.Unlock()
		if parked || len(res) > 0 {
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q never parked", tenant)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionDeficitDispatch(t *testing.T) {
	// Two slots, both held by tenant a; one a-waiter parks first, then a
	// b-waiter. The freed slot must go to b — lower active/weight deficit
	// beats FIFO arrival.
	a := newTestAdmission(Config{MaxSessions: 2, AdmitWait: 5 * time.Second, AdmitQueue: 8})
	if a.admit("a") != admitOK || a.admit("a") != admitOK {
		t.Fatal("initial grants refused")
	}
	aWait := park(t, a, "a")
	bWait := park(t, a, "b")

	a.release("a")
	select {
	case r := <-bWait:
		if r != admitOK {
			t.Fatalf("b waiter got %v, want admitOK", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("freed slot not dispatched to the lower-deficit tenant")
	}
	select {
	case r := <-aWait:
		t.Fatalf("a waiter resolved %v before a slot freed for it", r)
	default:
	}

	// The next release goes to the remaining a-waiter.
	a.release("a")
	if r := <-aWait; r != admitOK {
		t.Fatalf("a waiter got %v, want admitOK", r)
	}
	a.release("a")
	a.release("b")
}

func TestAdmissionWeightedDispatch(t *testing.T) {
	// Weights skew the deficit: with weight(a)=3, tenant a holding one
	// slot (deficit 1/3) beats tenant b holding one (deficit 1/1), so the
	// freed slot goes to a's waiter even though b's parked first.
	a := newTestAdmission(Config{
		MaxSessions: 3, AdmitWait: 5 * time.Second, AdmitQueue: 8,
		TenantWeights: map[string]int{"a": 3},
	})
	if a.admit("a") != admitOK || a.admit("a") != admitOK || a.admit("b") != admitOK {
		t.Fatal("initial grants refused")
	}
	bWait := park(t, a, "b")
	aWait := park(t, a, "a")

	a.release("a") // active: a=1, b=1; deficits a=1/3 < b=1/1
	select {
	case r := <-aWait:
		if r != admitOK {
			t.Fatalf("weighted a waiter got %v, want admitOK", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("freed slot not dispatched to the weighted tenant")
	}
	select {
	case r := <-bWait:
		t.Fatalf("b waiter resolved %v out of turn", r)
	default:
	}
	a.release("a")
	<-bWait
}

func TestAdmissionTenantCapAndTimeout(t *testing.T) {
	a := newTestAdmission(Config{MaxSessions: 4, TenantSessions: 1, AdmitWait: 20 * time.Millisecond, AdmitQueue: 4})
	if a.admit("a") != admitOK {
		t.Fatal("first a session refused")
	}
	// At the tenant cap: typed quota answer, immediately — waiting would
	// not help, the tenant's own sessions hold the cap.
	if r := a.admit("a"); r != admitQuota {
		t.Fatalf("over-cap tenant got %v, want admitQuota", r)
	}
	// The anonymous tenant is exempt from the per-tenant cap.
	if a.admit("") != admitOK || a.admit("") != admitOK {
		t.Fatal("anonymous sessions refused under per-tenant cap")
	}
	// Global capacity full: a waiter that times out resolves busy and
	// leaves no queue residue.
	if a.admit("b") != admitOK {
		t.Fatal("b session refused below global cap")
	}
	if r := a.admit("c"); r != admitBusy {
		t.Fatalf("timed-out waiter got %v, want admitBusy", r)
	}
	a.mu.Lock()
	qlen := len(a.queue)
	a.mu.Unlock()
	if qlen != 0 {
		t.Fatalf("queue holds %d waiters after timeout, want 0", qlen)
	}
	a.release("a")
	a.release("b")
	a.release("")
	a.release("")
}

// TestTenantByteQuota: a tenant streaming past its byte budget gets the
// typed quota verdict mid-stream — a clean answer, not a cut connection —
// and the server survives to serve other tenants.
func TestTenantByteQuota(t *testing.T) {
	srv, addr := startServer(t, Config{
		TenantBytesPerSec: 1024,
		TenantBurstBytes:  512,
	})

	// An identified tenant pushing a stream well past the burst bucket.
	c := dialT(t, addr)
	h := SyntheticHeader()
	h.Tenant = "greedy"
	v, err := c.Check(h, SyntheticAccept(2000)) // ~4 bytes/symbol, far over 512
	if err != nil {
		t.Fatal(err)
	}
	if !v.Quota() || !v.Busy() {
		t.Fatalf("over-budget stream verdict %v, want quota", v)
	}

	// The anonymous tenant is not byte-metered.
	c2 := dialT(t, addr)
	if v, err := c2.Check(SyntheticHeader(), SyntheticAccept(2000)); err != nil || v.Code != VerdictAccept {
		t.Fatalf("anonymous stream: %v, %v", v, err)
	}

	st := srv.Stats()
	if st.QuotaRejects < 1 {
		t.Fatalf("quota rejects = %d, want >= 1", st.QuotaRejects)
	}
	ts, ok := st.Tenants["greedy"]
	if !ok {
		t.Fatal("no per-tenant stats for the metered tenant")
	}
	if ts.QuotaRejects < 1 || ts.Bytes == 0 {
		t.Fatalf("tenant stats %+v, want quota rejects and byte accounting", ts)
	}
}

// TestMultiTenantStorm is the adversarial-tenant acceptance test: one
// flooding tenant hammers a small server from many connections while two
// polite tenants run sequential sessions. The per-tenant session cap and
// fair-share queue must (1) answer the flood's excess with typed quota
// verdicts, (2) keep every polite session completing, and (3) hold each
// polite tenant's throughput within 2x of its fair share of the slots.
func TestMultiTenantStorm(t *testing.T) {
	srv, addr := startServer(t, Config{
		MaxSessions:    2,
		TenantSessions: 1,
		AdmitWait:      2 * time.Second,
		AdmitQueue:     64,
	})

	// Sessions must be long enough to overlap, or the cap never binds:
	// ~80 KiB of wire keeps each slot held across several frame round
	// trips, so 16 flooding connections genuinely contend.
	stream := SyntheticAccept(20000)
	window := 600 * time.Millisecond
	if raceEnabled {
		// The race detector slows sessions roughly an order of magnitude;
		// widen the storm so enough sessions complete for the throughput
		// ratio to be meaningful rather than noise.
		window = 4 * time.Second
	}
	deadline := time.Now().Add(window)
	var floodDone, p1Done, p2Done atomic.Int64
	var floodQuota atomic.Int64

	run := func(tenant string, done, quota *atomic.Int64) {
		c, err := DialTimeout(addr, 5*time.Second)
		if err != nil {
			return
		}
		defer c.Close()
		for time.Now().Before(deadline) {
			h := SyntheticHeader()
			h.Tenant = tenant
			v, err := c.Check(h, stream)
			if err != nil {
				return // transport error: the conn is done
			}
			switch {
			case v.Code == VerdictAccept:
				done.Add(1)
			case v.Quota():
				if quota != nil {
					quota.Add(1)
				}
				time.Sleep(time.Millisecond)
			case v.Busy():
				time.Sleep(time.Millisecond)
			default:
				t.Errorf("tenant %s got unexpected verdict %v", tenant, v)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ { // the adversary: 16 concurrent connections
		wg.Add(1)
		go func() { defer wg.Done(); run("flood", &floodDone, &floodQuota) }()
	}
	// Each polite tenant runs four connections — more client concurrency
	// than its single-session cap needs, so an empty slot is refilled
	// promptly and throughput differences measure the server's
	// arbitration rather than the clients' own pacing.
	for _, p := range []struct {
		tenant string
		done   *atomic.Int64
	}{{"p1", &p1Done}, {"p2", &p2Done}} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(tenant string, done *atomic.Int64) {
				defer wg.Done()
				run(tenant, done, nil)
			}(p.tenant, p.done)
		}
	}
	wg.Wait()

	flood, p1, p2 := floodDone.Load(), p1Done.Load(), p2Done.Load()
	t.Logf("storm: flood=%d (quota rejects %d), p1=%d, p2=%d", flood, floodQuota.Load(), p1, p2)

	if floodQuota.Load() == 0 {
		t.Error("the flooding tenant never hit its session cap")
	}
	if p1 == 0 || p2 == 0 {
		t.Fatalf("a polite tenant was starved: p1=%d p2=%d", p1, p2)
	}
	// Fair share: every tenant is capped at one concurrent session of the
	// two slots, so the per-tenant cap plus the deficit queue should split
	// throughput roughly evenly — the flood's extra connections must buy
	// it nothing beyond a faster refill of its single slot. Assert each
	// polite tenant lands within 2x of that even split.
	for _, p := range []struct {
		name string
		n    int64
	}{{"p1", p1}, {"p2", p2}} {
		if p.n*2 < flood/2 {
			t.Errorf("tenant %s completed %d sessions, under half of fair share (flood=%d)", p.name, p.n, flood)
		}
	}

	st := srv.Stats()
	if len(st.Tenants) != 3 {
		t.Errorf("tenant stats tracked %d tenants, want 3: %+v", len(st.Tenants), st.Tenants)
	}
	for _, tenant := range []string{"flood", "p1", "p2"} {
		if _, ok := st.Tenants[tenant]; !ok {
			t.Errorf("no stats entry for tenant %q", tenant)
		}
	}
	if st.SessionsActive != 0 {
		t.Errorf("sessions still active after the storm: %d", st.SessionsActive)
	}
}

// TestStatsStringRendersLiveOps pins the operator-facing stats line: the
// drain marker and the live-operations counters appear once the features
// fire, and stay out of the way when they have not.
func TestStatsStringRendersLiveOps(t *testing.T) {
	quiet := Stats{}
	if s := quiet.String(); s == "" {
		t.Fatal("empty stats did not render")
	}
	busy := Stats{Draining: true, Drains: 2, DrainRejects: 3, QuotaRejects: 4, AdmitParked: 1}
	s := busy.String()
	for _, want := range []string{"DRAINING", "2 drains", "3 refused", "4 quota rejects", "1 parked"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats line %q missing %q", s, want)
		}
	}
}
