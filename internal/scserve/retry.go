package scserve

import (
	"fmt"
	mrand "math/rand"
	"net"
	"time"

	"scverify/internal/descriptor"
)

// RetryConfig tunes a RetryClient. The zero value gets sane defaults.
type RetryConfig struct {
	// Timeout is the per-operation deadline (dial, frame read, frame
	// write). Default 10s.
	Timeout time.Duration
	// MaxAttempts bounds connection attempts per operation: each
	// SendBytes/Finish/Stats call may redial up to this many times before
	// giving up. Default 5.
	MaxAttempts int
	// BaseDelay and MaxDelay bound the exponential backoff between
	// attempts: attempt i sleeps a jittered min(BaseDelay<<i, MaxDelay).
	// Defaults 50ms and 2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the backoff jitter deterministic for tests; 0 seeds from
	// the wall clock.
	Seed int64
	// MaxBuffer caps the local replay buffer of unacked stream bytes. A
	// session whose unacked tail outgrows it fails cleanly (the
	// degrade-to-error invariant) rather than buffering without bound.
	// Default 16 MiB.
	MaxBuffer int
	// PollEvery is the number of streamed bytes between ack polls while
	// sending; polls trim the replay buffer. Default 32 KiB.
	PollEvery int
	// Dial overrides the transport, e.g. to route through a faultnet
	// link. Defaults to net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = 16 << 20
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 32 << 10
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// RetryClient is the fault-tolerant client: it wraps the session protocol
// in bounded-backoff reconnection and transparent session resumption, so
// transient network faults cost retries, not verdicts. Each session gets
// a random resume token; the client buffers the unacked tail of its
// stream locally and, after a reconnect, replays only from the server's
// last checkpoint. The guarantee mirrors the server's: a delivered
// verdict is always the deterministic checker's verdict over the exact
// stream sent — faults can surface as errors, never as wrong answers.
//
// Not goroutine-safe; open one RetryClient per concurrent stream.
//
//scvet:single-goroutine
type RetryClient struct {
	addr string
	cfg  RetryConfig
	rng  *mrand.Rand
	c    *Client // current connection, nil between attempts
}

// NewRetryClient returns a client for the server at addr. No connection
// is made until the first operation.
func NewRetryClient(addr string, cfg RetryConfig) *RetryClient {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &RetryClient{addr: addr, cfg: cfg, rng: mrand.New(mrand.NewSource(seed))}
}

// Close drops the current connection, if any.
func (rc *RetryClient) Close() error {
	if rc.c == nil {
		return nil
	}
	err := rc.c.Close()
	rc.c = nil
	return err
}

// dropConn discards a connection after a transport error.
func (rc *RetryClient) dropConn() {
	if rc.c != nil {
		rc.c.Close()
		rc.c = nil
	}
}

// backoff sleeps the jittered exponential delay for the given attempt.
func (rc *RetryClient) backoff(attempt int) {
	d := rc.cfg.BaseDelay << attempt
	if d <= 0 || d > rc.cfg.MaxDelay {
		d = rc.cfg.MaxDelay
	}
	// Jitter uniformly over [d/2, d] so a fleet of clients kicked off by
	// the same fault doesn't reconnect in lockstep.
	d = d/2 + time.Duration(rc.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// connect ensures a live connection, dialing if needed.
func (rc *RetryClient) connect() error {
	if rc.c != nil {
		return nil
	}
	conn, err := rc.cfg.Dial(rc.addr, rc.cfg.Timeout)
	if err != nil {
		return err
	}
	rc.c = NewClient(conn, rc.cfg.Timeout)
	return nil
}

// Stats fetches the server's counters, retrying transport failures.
func (rc *RetryClient) Stats() (Stats, error) {
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.backoff(attempt - 1)
		}
		if err := rc.connect(); err != nil {
			lastErr = err
			continue
		}
		st, err := rc.c.Stats()
		if err == nil {
			return st, nil
		}
		lastErr = err
		rc.dropConn()
	}
	return Stats{}, fmt.Errorf("scserve: stats failed after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Session opens a fault-tolerant session. h.Token may be left empty (a
// random token is drawn); h.Resume must not be set — resumption is the
// RetrySession's business.
func (rc *RetryClient) Session(h Header) (*RetrySession, error) {
	if h.Resume {
		return nil, fmt.Errorf("scserve: RetryClient manages resumption itself; do not set Header.Resume")
	}
	if h.Token == "" {
		h.Token = NewToken()
	}
	return &RetrySession{rc: rc, hdr: h}, nil
}

// RetrySession is one logical checking session that survives connection
// loss. It buffers the unacked tail of the stream and replays it into the
// server's checkpoint after a reconnect.
type RetrySession struct {
	rc  *RetryClient
	hdr Header

	buf     []byte // unacked stream tail; buf[0] is at absolute offset base
	base    int64  // byte offset of buf[0] = highest acked offset
	baseSym int    // symbol index at base
	total   int64  // total stream bytes accepted from the caller

	sess   *Session // nil between connections
	sent   int64    // absolute offset streamed on the current connection
	unpoll int      // bytes sent since the last ack poll
	done   bool
}

// Bytes returns the total stream bytes accepted so far.
func (s *RetrySession) Bytes() int64 { return s.total }

// Acked returns the highest server-acked byte offset: bytes before it
// have been dropped from the replay buffer.
func (s *RetrySession) Acked() int64 { return s.base }

// Buffered returns the current replay-buffer size in bytes.
func (s *RetrySession) Buffered() int { return len(s.buf) }

// trim drops acked bytes from the replay buffer.
func (s *RetrySession) trim() {
	if s.sess == nil {
		return
	}
	sym, off := s.sess.Acked()
	if off > s.base && off <= s.base+int64(len(s.buf)) {
		s.buf = s.buf[off-s.base:]
		s.base, s.baseSym = off, sym
	}
}

// ensure establishes a connection with an open session positioned at
// s.sent. A fresh session (nothing acked yet) re-opens with a fresh
// hello; otherwise it resumes from the server's checkpoint, which names
// the offset to replay from.
func (s *RetrySession) ensure() error {
	if s.sess != nil {
		return nil
	}
	if err := s.rc.connect(); err != nil {
		return err
	}
	h := s.hdr
	if s.base > 0 {
		h.Resume = true
		h.AckSymbol, h.AckOffset = s.baseSym, s.base
	}
	sess, err := s.rc.c.Session(h)
	if err != nil {
		s.rc.dropConn()
		return err
	}
	s.sess = sess
	if h.Resume {
		if sess.early != nil {
			// The server answered the resume with a verdict: either the
			// session already completed (replayed verdict — deliver it)
			// or the token is gone (clean error; Finish surfaces it).
			s.sent = s.total
			return nil
		}
		_, off := sess.Acked()
		if off < s.base || off > s.base+int64(len(s.buf)) {
			// The server's checkpoint is outside what we can replay;
			// treat it as a failed attempt.
			s.rc.dropConn()
			s.sess = nil
			return fmt.Errorf("scserve: resume ack at offset %d outside buffered range [%d, %d]",
				off, s.base, s.base+int64(len(s.buf)))
		}
		s.trim()
	}
	s.sent = s.base
	return nil
}

// push streams the replay buffer's unsent tail on the current
// connection, polling for acks as it goes. Chunks are capped at the poll
// cadence so acks are observed (and the buffer trimmed) while streaming,
// not just at the end.
func (s *RetrySession) push() error {
	chunk := maxChunk
	if s.rc.cfg.PollEvery < chunk {
		chunk = s.rc.cfg.PollEvery
	}
	for s.sent < s.base+int64(len(s.buf)) {
		if s.sess.early != nil {
			// Early verdict (rejection or busy): the server is draining.
			// Stop streaming; Finish delivers the verdict.
			s.sent = s.total
			return nil
		}
		tail := s.buf[s.sent-s.base:]
		n := len(tail)
		if n > chunk {
			n = chunk
		}
		if err := s.sess.SendBytes(tail[:n]); err != nil {
			return err
		}
		s.sent += int64(n)
		s.unpoll += n
		if s.unpoll >= s.rc.cfg.PollEvery {
			s.unpoll = 0
			if err := s.sess.Flush(); err != nil {
				return err
			}
			if err := s.sess.Poll(); err != nil {
				return err
			}
			s.trim()
		}
	}
	return nil
}

// fail records a transport error on the current connection and decides
// whether another attempt may proceed.
func (s *RetrySession) fail() {
	s.rc.dropConn()
	s.sess = nil
}

// SendBytes appends raw descriptor wire bytes to the logical stream,
// streaming them (and any unsent replay tail) with retries. The bytes
// need not align with symbol boundaries.
func (s *RetrySession) SendBytes(raw []byte) error {
	if s.done {
		return fmt.Errorf("scserve: send after Finish")
	}
	if len(s.buf)+len(raw) > s.rc.cfg.MaxBuffer {
		// One flush+poll may reveal acks that shrink the buffer before we
		// declare the session over budget.
		if s.sess != nil {
			if err := s.sess.Flush(); err == nil {
				if err := s.sess.Poll(); err == nil {
					s.trim()
				}
			}
		}
		if len(s.buf)+len(raw) > s.rc.cfg.MaxBuffer {
			return fmt.Errorf("scserve: unacked stream tail exceeds replay buffer limit %d", s.rc.cfg.MaxBuffer)
		}
	}
	s.buf = append(s.buf, raw...)
	s.total += int64(len(raw))

	var lastErr error
	for attempt := 0; attempt < s.rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.rc.backoff(attempt - 1)
		}
		if err := s.ensure(); err != nil {
			lastErr = err
			continue
		}
		if err := s.push(); err != nil {
			lastErr = err
			s.fail()
			continue
		}
		return nil
	}
	return fmt.Errorf("scserve: send failed after %d attempts: %w", s.rc.cfg.MaxAttempts, lastErr)
}

// Send encodes and streams the given symbols.
func (s *RetrySession) Send(syms ...descriptor.Symbol) error {
	var scratch []byte
	for _, sym := range syms {
		scratch = descriptor.AppendBinary(scratch, sym)
	}
	return s.SendBytes(scratch)
}

// maxDrainRedirects bounds the free (no-backoff, no-attempt) redirects a
// session takes on draining verdicts before degrading to the ordinary
// busy backoff path — the escape hatch when every reachable backend is
// draining at once.
const maxDrainRedirects = 4

// Finish concludes the logical session and returns the verdict, retrying
// transport failures (resuming and replaying the unacked tail as needed)
// and busy rejections (with backoff, restarting the session). A draining
// verdict is a redirect, not a failure: the connection is dropped and the
// session restarts immediately — no backoff, no attempt consumed — so
// that a dial through a dispatcher or VIP lands on a backend that is
// admitting. Every verdict returned was produced by the server's checker
// over exactly the bytes this session streamed.
func (s *RetrySession) Finish() (Verdict, error) {
	if s.done {
		return Verdict{}, fmt.Errorf("scserve: session already finished")
	}
	var lastErr error
	redirects := 0
	skipBackoff := false
	for attempt := 0; attempt < s.rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 && !skipBackoff {
			s.rc.backoff(attempt - 1)
		}
		skipBackoff = false
		if err := s.ensure(); err != nil {
			lastErr = err
			continue
		}
		if err := s.push(); err != nil {
			lastErr = err
			s.fail()
			continue
		}
		v, err := s.sess.Finish()
		if err != nil {
			lastErr = err
			s.fail()
			continue
		}
		if v.Busy() {
			lastErr = v.Err()
			s.sess = nil
			s.sent = s.base
			if v.Draining() && redirects < maxDrainRedirects {
				// Redirect-not-failure: the backend is draining, not
				// overloaded. Redial immediately (through a dispatcher the
				// fresh connection is placed on an admitting backend) and
				// give the attempt back.
				redirects++
				s.rc.dropConn()
				attempt--
				skipBackoff = true
				continue
			}
			// Clean capacity rejection: the session never ran. Back off
			// and restart it (resuming if part of it was checkpointed
			// before the connection was lost).
			continue
		}
		s.done = true
		s.sess = nil
		return v, nil
	}
	s.done = true
	return Verdict{}, fmt.Errorf("scserve: session failed after %d attempts: %w", s.rc.cfg.MaxAttempts, lastErr)
}

// Check is the one-shot convenience: it opens a fault-tolerant session
// with h, streams the whole stream, and returns the verdict.
func (rc *RetryClient) Check(h Header, stream descriptor.Stream) (Verdict, error) {
	s, err := rc.Session(h)
	if err != nil {
		return Verdict{}, err
	}
	if err := s.Send(stream...); err != nil {
		return Verdict{}, err
	}
	return s.Finish()
}
