package scserve

import (
	"testing"
	"time"

	"scverify/internal/descriptor"
)

// These tests pin the drain half of the live-operations contract: a
// draining server refuses fresh hellos with the draining verdict (a
// clean busy-family redirect, never a dropped connection), keeps serving
// resumes and in-flight sessions to their correct verdicts, replays
// stored verdicts, and rejoins on Undrain — all without ever touching
// the listener.

func TestDrainRefusesFreshServesInFlight(t *testing.T) {
	srv, addr := startServer(t, Config{AckInterval: 8})
	stream, rejectIdx := SyntheticReject(60)
	wire := descriptor.Marshal(stream)

	// An in-flight session opened before the drain...
	c1 := dialT(t, addr)
	sess, err := c1.Session(tokenHeader("inflight"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendBytes(wire[:len(wire)/2]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForAck(t, sess)

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Drain() did not set drain mode")
	}

	// ...runs to its correct verdict.
	if err := sess.SendBytes(wire[len(wire)/2:]); err != nil {
		t.Fatal(err)
	}
	v, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != VerdictReject || v.Symbol != rejectIdx {
		t.Fatalf("in-flight verdict through drain: %v, want reject at symbol %d", v, rejectIdx)
	}

	// A fresh hello gets the draining verdict — busy-family, so legacy
	// retry loops back off instead of failing.
	c2 := dialT(t, addr)
	dv, err := c2.Check(SyntheticHeader(), SyntheticAccept(9))
	if err != nil {
		t.Fatal(err)
	}
	if !dv.Draining() || !dv.Busy() {
		t.Fatalf("fresh hello while draining: %v, want draining verdict", dv)
	}

	// Undrain: fresh sessions are admitted again.
	srv.Undrain()
	c3 := dialT(t, addr)
	av, err := c3.Check(SyntheticHeader(), SyntheticAccept(9))
	if err != nil || av.Code != VerdictAccept {
		t.Fatalf("fresh hello after undrain: %v, %v", av, err)
	}

	st := srv.Stats()
	if st.Draining {
		t.Fatal("stats still report draining after Undrain")
	}
	if st.Drains != 1 || st.DrainRejects != 1 {
		t.Fatalf("drains=%d drainRejects=%d, want 1 and 1", st.Drains, st.DrainRejects)
	}
}

func TestDrainServesResumesAndReplays(t *testing.T) {
	srv, addr := startServer(t, Config{AckInterval: 8})
	stream, rejectIdx := SyntheticReject(100)
	wire := descriptor.Marshal(stream)

	// Checkpoint half a session, lose the connection.
	c1 := dialT(t, addr)
	sess, err := c1.Session(tokenHeader("drain-resume"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendBytes(wire[:offsetOf(stream, 50)]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForAck(t, sess)
	ackSym, ackOff := sess.Acked()

	// Complete a second tokened session whose verdict we will replay.
	c2 := dialT(t, addr)
	if v, err := c2.Check(tokenHeader("drain-replay"), SyntheticAccept(32)); err != nil || v.Code != VerdictAccept {
		t.Fatalf("pre-drain session: %v, %v", v, err)
	}

	c1.Close()
	srv.Drain()

	// The checkpointed session resumes through the drain and finishes with
	// the exact verdict.
	c3 := dialT(t, addr)
	h := tokenHeader("drain-resume")
	h.Resume, h.AckSymbol, h.AckOffset = true, ackSym, ackOff
	sess3, err := c3.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	_, roff := sess3.Acked()
	if roff <= 0 || roff >= int64(len(wire)) {
		t.Fatalf("resume-through-drain ack offset %d outside (0, %d)", roff, len(wire))
	}
	if err := sess3.SendBytes(wire[roff:]); err != nil {
		t.Fatal(err)
	}
	v, err := sess3.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != VerdictReject || v.Symbol != rejectIdx || v.Offset != offsetOf(stream, rejectIdx) {
		t.Fatalf("resumed-through-drain verdict %v, want reject at symbol %d byte %d", v, rejectIdx, offsetOf(stream, rejectIdx))
	}

	// The finished session's verdict replays through the drain too: a
	// client that missed its answer must not be stranded by the restart.
	c4 := dialT(t, addr)
	hr := tokenHeader("drain-replay")
	hr.Resume = true
	sess4, err := c4.Session(hr)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := sess4.Finish()
	if err != nil || rv.Code != VerdictAccept {
		t.Fatalf("verdict replay through drain: %v, %v", rv, err)
	}

	// Both the checkpoint resume and the verdict replay count as resumes.
	if srv.Stats().Resumes != 2 {
		t.Fatalf("resumes = %d, want 2", srv.Stats().Resumes)
	}
	srv.Undrain()
}

// TestDrainAdminFrame drives the drain switch over the wire: Client.Drain
// flips the server and returns stats carrying the Draining bit, Undrain
// lifts it, and a mid-session Drain call on the same client is refused
// locally instead of corrupting the session framing.
func TestDrainAdminFrame(t *testing.T) {
	srv, addr := startServer(t, Config{})

	admin := dialT(t, addr)
	st, err := admin.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("Drain() stats reply does not carry the Draining bit")
	}
	if !srv.Draining() {
		t.Fatal("drain admin frame did not flip the server")
	}

	c := dialT(t, addr)
	v, err := c.Check(SyntheticHeader(), SyntheticAccept(9))
	if err != nil || !v.Draining() {
		t.Fatalf("fresh hello after wire drain: %v, %v", v, err)
	}

	st, err = admin.Undrain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Draining || srv.Draining() {
		t.Fatal("Undrain() did not lift drain mode")
	}
	v, err = c.Check(SyntheticHeader(), SyntheticAccept(9))
	if err != nil || v.Code != VerdictAccept {
		t.Fatalf("fresh hello after wire undrain: %v, %v", v, err)
	}

	// Drain mid-session is a local error: the admin frame may not be
	// spliced into an open session's byte stream.
	sess, err := c.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(); err == nil {
		t.Fatal("Drain() inside an open session did not error")
	}
	if _, err := sess.Finish(); err != nil {
		t.Fatalf("session after refused mid-session drain: %v", err)
	}
}

// TestDrainMalformedFrame: a drain frame with a bad payload is a protocol
// error, not a state change.
func TestDrainMalformedFrame(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dialT(t, addr)
	if err := writeFrame(c.bw, frameDrain, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(c.br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameVerdict {
		t.Fatalf("malformed drain answered with frame %#x, want verdict", typ)
	}
	v, err := parseVerdict(payload)
	if err != nil || v.Code != VerdictProtocolError {
		t.Fatalf("malformed drain verdict: %+v, %v", v, err)
	}
	if srv.Draining() {
		t.Fatal("malformed drain frame changed drain state")
	}
}

// TestDrainUnderRetryClient: a RetryClient pointed at a single draining
// server does not hot-loop — after the bounded redirect budget it falls
// back to plain busy backoff and eventually surfaces the busy error.
func TestDrainUnderRetryClient(t *testing.T) {
	srv, addr := startServer(t, Config{})
	srv.Drain()
	rc := NewRetryClient(addr, RetryConfig{
		Timeout: 5 * time.Second, MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 1,
	})
	defer rc.Close()
	start := time.Now()
	_, err := rc.Check(SyntheticHeader(), SyntheticAccept(9))
	if err == nil {
		t.Fatal("check against a fully-draining fleet of one succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("draining single server took %s to fail; redirect budget not bounded?", elapsed)
	}
	// The server answered every attempt with the clean draining verdict.
	if st := srv.Stats(); st.DrainRejects < int64(2) {
		t.Fatalf("drain rejects = %d, want >= 2 (every attempt answered cleanly)", st.DrainRejects)
	}
}
