package scserve

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/faultnet"
)

// TestClientPerOpDeadlines is the regression test for the old
// whole-connection deadline: a session whose total wall time far exceeds
// the client timeout must succeed as long as every individual operation
// makes progress within it.
func TestClientPerOpDeadlines(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := DialTimeout(addr, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stream := SyntheticAccept(64)
	sess, err := c.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	// Spread the stream over ~600ms — four timeouts' worth of wall time.
	part := (len(stream) + 7) / 8
	for i := 0; i < 8; i++ {
		lo, hi := i*part, (i+1)*part
		if hi > len(stream) {
			hi = len(stream)
		}
		if err := sess.Send(stream[lo:hi]...); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
		time.Sleep(75 * time.Millisecond)
	}
	v, err := sess.Finish()
	if err != nil {
		t.Fatalf("session spuriously timed out: %v", err)
	}
	if v.Code != VerdictAccept {
		t.Fatalf("verdict %v, want accept", v)
	}
}

// countConn counts payload bytes written through a connection.
type countConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.n.Add(int64(n))
	return n, err
}

// TestRetryClientResumes: the first connection is cut mid-stream by fault
// injection; the RetryClient must reconnect, resume from the server's
// checkpoint, replay only the unacked tail, and still deliver the exact
// verdict with stream-absolute positions.
func TestRetryClientResumes(t *testing.T) {
	srv, addr := startServer(t, Config{AckInterval: 64})
	stream, rejectIdx := SyntheticReject(5000)
	wire := descriptor.Marshal(stream)

	var dials atomic.Int64
	var conn2Bytes atomic.Int64
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		switch dials.Add(1) {
		case 1:
			// First connection dies deterministically mid-stream.
			return faultnet.Wrap(conn, faultnet.Config{Seed: 42, ResetAfterBytes: int64(len(wire)) * 3 / 4}, nil), nil
		default:
			return countConn{Conn: conn, n: &conn2Bytes}, nil
		}
	}
	rc := NewRetryClient(addr, RetryConfig{
		Timeout: 5 * time.Second, BaseDelay: time.Millisecond, Seed: 1,
		PollEvery: 2 << 10, Dial: dial,
	})
	defer rc.Close()

	sess, err := rc.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendBytes(wire); err != nil {
		t.Fatal(err)
	}
	v, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != VerdictReject || v.Symbol != rejectIdx || v.Offset != offsetOf(stream, rejectIdx) {
		t.Fatalf("verdict %v, want reject at symbol %d byte %d", v, rejectIdx, offsetOf(stream, rejectIdx))
	}
	if dials.Load() < 2 {
		t.Fatalf("dials = %d, want at least 2 (a reset was injected)", dials.Load())
	}
	if got := srv.Stats().Resumes; got < 1 {
		t.Fatalf("server resumes = %d, want >= 1", got)
	}
	// The point of resumption: the second connection must NOT have
	// replayed the whole stream.
	if got := conn2Bytes.Load(); got >= int64(len(wire)) {
		t.Fatalf("second connection carried %d bytes — a full replay of the %d-byte stream", got, len(wire))
	}
	if sess.Acked() <= 0 {
		t.Fatalf("client never advanced past an ack (base=%d)", sess.Acked())
	}
}

// TestRetryClientBusy: a busy verdict is retried with backoff until a
// session slot frees up, and the eventual verdict is genuine.
func TestRetryClientBusy(t *testing.T) {
	srv, addr := startServer(t, Config{MaxSessions: 1})

	// Occupy the only slot.
	c1 := dialT(t, addr)
	s1, err := c1.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(SyntheticAccept(20)...); err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(); err != nil {
		t.Fatal(err)
	}
	waitActive(t, srv, 1)

	// Free the slot shortly after the retry client first bounces.
	release := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		if v, err := s1.Finish(); err != nil || v.Code != VerdictAccept {
			t.Errorf("occupier finish: %v, %v", v, err)
		}
		close(release)
	}()

	rc := NewRetryClient(addr, RetryConfig{
		Timeout: 5 * time.Second, BaseDelay: 25 * time.Millisecond, MaxAttempts: 10, Seed: 1,
	})
	defer rc.Close()
	v, err := rc.Check(SyntheticHeader(), SyntheticAccept(30))
	if err != nil {
		t.Fatalf("retry across busy failed: %v", err)
	}
	if v.Code != VerdictAccept {
		t.Fatalf("verdict %v, want accept", v)
	}
	<-release
	if srv.Stats().Busy < 1 {
		t.Fatalf("busy counter = %d, want >= 1", srv.Stats().Busy)
	}
}

// TestRetryClientGivesUp: with no server at all, the retry budget is
// spent and a clean error comes back — bounded, not infinite, retrying.
func TestRetryClientGivesUp(t *testing.T) {
	// Grab an address that is then closed again.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := NewRetryClient(addr, RetryConfig{
		Timeout: time.Second, MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1,
	})
	defer rc.Close()
	start := time.Now()
	if _, err := rc.Check(SyntheticHeader(), SyntheticAccept(10)); err == nil {
		t.Fatal("expected an error with no server listening")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gave up after %v — backoff not bounded", elapsed)
	}
}

// TestRetryBufferLimit: the replay buffer cap fails the session cleanly
// when the server never acks (no token checkpointing server-side would
// ack, but here the buffer cap is simply tiny).
func TestRetryBufferLimit(t *testing.T) {
	_, addr := startServer(t, Config{AckInterval: 1 << 30}) // never checkpoint
	rc := NewRetryClient(addr, RetryConfig{
		Timeout: 2 * time.Second, BaseDelay: time.Millisecond, Seed: 1,
		MaxBuffer: 1 << 10,
	})
	defer rc.Close()
	sess, err := rc.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	wire := descriptor.Marshal(SyntheticAccept(2000))
	for off := 0; off < len(wire); off += 512 {
		end := off + 512
		if end > len(wire) {
			end = len(wire)
		}
		if sendErr = sess.SendBytes(wire[off:end]); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("unacked tail exceeded MaxBuffer without an error")
	}
}
