package scserve

import (
	"encoding/binary"
	"fmt"

	"scverify/internal/mc"
)

// Explore sessions turn a scserve backend into one shard of the scmc
// distributed exploration fabric. The hello's explore extension fixes the
// target to build and this backend's place in the ownership partition;
// after that the session exchanges item batches (frameExplore inbound,
// frameExploreFwd outbound) and credit reports (frameExploreRep) until the
// coordinator's frameEnd, which is answered with a final report and an
// accept verdict. A violation preempts everything via frameExploreViol.
//
// All explore payloads are uvarint-based like the rest of the protocol,
// and item batches are bounded (maxExploreItems) so a frame stays within
// the ordinary MaxFrame budget without trusting the peer.

// Explore visited-set modes. The mode is a uvarint enum, not a flag
// field: new modes extend the value space and old parsers reject them.
const (
	ExploreModeFP    = 0 // 64-bit fingerprint visited set (default)
	ExploreModeExact = 1 // exact canonical-key visited set
	ExploreModeAudit = 2 // fingerprints plus collision audit
)

// Explore payload bounds.
const (
	maxExploreItems    = 8192    // items per batch frame
	maxExplorePath     = 1 << 20 // transition indices per work item
	maxExploreKey      = 1 << 16 // canonical key bytes per claim
	maxExploreShards   = 256     // shards per grid
	maxExploreProtoLen = 64      // protocol name bytes
)

// ExploreHeader is the hello extension opening an explore session.
type ExploreHeader struct {
	// Protocol names the registry target every shard builds.
	Protocol string
	// QueueCap is the registry queue-capacity parameter (0 = default).
	QueueCap int
	// Shard is this backend's index in Shards.
	Shard int
	// Shards is the ordered shard identity list the rendezvous ownership
	// partition is computed over — identical on every backend of the grid.
	Shards []string
	// MaxStates caps this shard's visited set (0 = server default).
	MaxStates int
	// MaxDepth bounds exploration depth (0 = unbounded).
	MaxDepth int
	// Mode selects the visited-set implementation (ExploreMode*).
	Mode int
}

func appendExploreHeader(dst []byte, eh *ExploreHeader) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(eh.Protocol)))
	dst = append(dst, eh.Protocol...)
	dst = binary.AppendUvarint(dst, uint64(eh.QueueCap))
	dst = binary.AppendUvarint(dst, uint64(eh.Shard))
	dst = binary.AppendUvarint(dst, uint64(len(eh.Shards)))
	for _, id := range eh.Shards {
		dst = binary.AppendUvarint(dst, uint64(len(id)))
		dst = append(dst, id...)
	}
	dst = binary.AppendUvarint(dst, uint64(eh.MaxStates))
	dst = binary.AppendUvarint(dst, uint64(eh.MaxDepth))
	dst = binary.AppendUvarint(dst, uint64(eh.Mode))
	return dst
}

func parseExploreHeader(payload []byte) (*ExploreHeader, int, error) {
	eh := &ExploreHeader{}
	pos := 0
	uv := func(name string, max uint64) (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("hello: truncated explore %s field", name)
		}
		pos += n
		if v > max {
			return 0, fmt.Errorf("hello: explore %s %d out of range", name, v)
		}
		return v, nil
	}
	str := func(name string, min, max uint64) (string, error) {
		l, err := uv(name+" length", max)
		if err != nil {
			return "", err
		}
		if l < min {
			return "", fmt.Errorf("hello: explore %s length %d below %d", name, l, min)
		}
		if uint64(len(payload)-pos) < l {
			return "", fmt.Errorf("hello: truncated explore %s", name)
		}
		s := string(payload[pos : pos+int(l)])
		pos += int(l)
		return s, nil
	}
	var err error
	if eh.Protocol, err = str("protocol", 1, maxExploreProtoLen); err != nil {
		return nil, 0, err
	}
	qc, err := uv("queue capacity", 1<<20)
	if err != nil {
		return nil, 0, err
	}
	eh.QueueCap = int(qc)
	shard, err := uv("shard", maxExploreShards-1)
	if err != nil {
		return nil, 0, err
	}
	eh.Shard = int(shard)
	nShards, err := uv("shard count", maxExploreShards)
	if err != nil {
		return nil, 0, err
	}
	if nShards < 1 {
		return nil, 0, fmt.Errorf("hello: explore shard count 0")
	}
	if shard >= nShards {
		return nil, 0, fmt.Errorf("hello: explore shard %d outside 0..%d", shard, nShards-1)
	}
	eh.Shards = make([]string, nShards)
	for i := range eh.Shards {
		if eh.Shards[i], err = str("shard identity", 1, maxExploreProtoLen); err != nil {
			return nil, 0, err
		}
	}
	ms, err := uv("max states", 1<<40)
	if err != nil {
		return nil, 0, err
	}
	eh.MaxStates = int(ms)
	md, err := uv("max depth", 1<<32)
	if err != nil {
		return nil, 0, err
	}
	eh.MaxDepth = int(md)
	mode, err := uv("mode", 1<<8)
	if err != nil {
		return nil, 0, err
	}
	if mode > ExploreModeAudit {
		return nil, 0, fmt.Errorf("hello: unknown explore mode %d", mode)
	}
	eh.Mode = int(mode)
	return eh, pos, nil
}

// AppendExploreItems encodes an item batch. Batches larger than
// maxExploreItems must be split by the caller (the session layer chunks).
func AppendExploreItems(dst []byte, items []mc.Item) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for i := range items {
		it := &items[i]
		dst = binary.AppendUvarint(dst, uint64(it.Kind))
		dst = binary.AppendUvarint(dst, uint64(it.Peer))
		switch it.Kind {
		case mc.ItemWork:
			dst = binary.AppendUvarint(dst, uint64(it.Act))
			dst = binary.AppendUvarint(dst, uint64(len(it.Path)))
			for _, idx := range it.Path {
				dst = binary.AppendUvarint(dst, uint64(idx))
			}
		case mc.ItemClaim:
			dst = binary.AppendUvarint(dst, it.Seq)
			dst = binary.LittleEndian.AppendUint64(dst, it.FP)
			dst = binary.AppendUvarint(dst, uint64(it.Depth))
			dst = binary.AppendUvarint(dst, uint64(len(it.Key)))
			dst = append(dst, it.Key...)
		case mc.ItemReply:
			dst = binary.AppendUvarint(dst, it.Seq)
			dst = binary.AppendUvarint(dst, uint64(it.Act))
		case mc.ItemShed:
			dst = binary.AppendUvarint(dst, uint64(it.N))
			dst = binary.AppendUvarint(dst, uint64(it.Target))
		}
	}
	return dst
}

// ParseExploreItems decodes an item batch, rejecting unknown kinds,
// out-of-range acts, and oversized paths/keys — a corrupt batch is a
// protocol error, never a panic or a silently dropped item.
func ParseExploreItems(payload []byte) ([]mc.Item, error) {
	pos := 0
	uv := func(name string, max uint64) (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("explore items: truncated %s field", name)
		}
		pos += n
		if v > max {
			return 0, fmt.Errorf("explore items: %s %d out of range", name, v)
		}
		return v, nil
	}
	count, err := uv("count", maxExploreItems)
	if err != nil {
		return nil, err
	}
	items := make([]mc.Item, 0, count)
	for i := uint64(0); i < count; i++ {
		kind, err := uv("kind", uint64(mc.ItemShed))
		if err != nil {
			return nil, err
		}
		peer, err := uv("peer", maxExploreShards-1)
		if err != nil {
			return nil, err
		}
		it := mc.Item{Kind: mc.ItemKind(kind), Peer: int(peer)}
		switch it.Kind {
		case mc.ItemWork:
			act, err := uv("act", uint64(mc.ActExpand))
			if err != nil {
				return nil, err
			}
			if mc.Act(act) == mc.ActDup {
				return nil, fmt.Errorf("explore items: work item with dup act")
			}
			it.Act = mc.Act(act)
			plen, err := uv("path length", maxExplorePath)
			if err != nil {
				return nil, err
			}
			if plen > 0 {
				it.Path = make([]int, plen)
				for j := range it.Path {
					idx, err := uv("path index", maxExplorePath)
					if err != nil {
						return nil, err
					}
					it.Path[j] = int(idx)
				}
			}
		case mc.ItemClaim:
			seq, err := uv("seq", 1<<62)
			if err != nil {
				return nil, err
			}
			it.Seq = seq
			if len(payload)-pos < 8 {
				return nil, fmt.Errorf("explore items: truncated fingerprint")
			}
			it.FP = binary.LittleEndian.Uint64(payload[pos:])
			pos += 8
			depth, err := uv("depth", 1<<32)
			if err != nil {
				return nil, err
			}
			it.Depth = int(depth)
			klen, err := uv("key length", maxExploreKey)
			if err != nil {
				return nil, err
			}
			if uint64(len(payload)-pos) < klen {
				return nil, fmt.Errorf("explore items: truncated key")
			}
			if klen > 0 {
				it.Key = append([]byte(nil), payload[pos:pos+int(klen)]...)
			}
			pos += int(klen)
		case mc.ItemReply:
			seq, err := uv("seq", 1<<62)
			if err != nil {
				return nil, err
			}
			it.Seq = seq
			act, err := uv("act", uint64(mc.ActExpand))
			if err != nil {
				return nil, err
			}
			if mc.Act(act) == mc.ActClaim {
				return nil, fmt.Errorf("explore items: reply without adjudication")
			}
			it.Act = mc.Act(act)
		case mc.ItemShed:
			n, err := uv("shed count", maxExplorePath)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("explore items: empty shed")
			}
			it.N = int(n)
			target, err := uv("shed target", maxExploreShards-1)
			if err != nil {
				return nil, err
			}
			it.Target = int(target)
		}
		items = append(items, it)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("explore items: %d trailing bytes", len(payload)-pos)
	}
	return items, nil
}

// AppendExploreReport encodes a shard's credit/progress report. The
// capped/depth-capped/failed markers are uvarint enums (0/1), not a flag
// field, so the report stays outside the wire-flag registry's scope.
func AppendExploreReport(dst []byte, r mc.Report) []byte {
	b01 := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	dst = binary.AppendUvarint(dst, uint64(r.Shard))
	dst = binary.AppendUvarint(dst, uint64(r.ItemsIn))
	dst = binary.AppendUvarint(dst, uint64(r.ItemsOut))
	dst = binary.AppendUvarint(dst, uint64(r.States))
	dst = binary.AppendUvarint(dst, uint64(r.Transitions))
	dst = binary.AppendUvarint(dst, uint64(r.PeakIDs))
	dst = binary.AppendUvarint(dst, uint64(r.Depth))
	dst = binary.AppendUvarint(dst, uint64(r.Pending))
	dst = binary.AppendUvarint(dst, uint64(r.QueueLen))
	dst = binary.AppendUvarint(dst, uint64(r.Collisions))
	dst = binary.AppendUvarint(dst, b01(r.Capped))
	dst = binary.AppendUvarint(dst, b01(r.DepthCapped))
	dst = binary.AppendUvarint(dst, b01(r.Failed))
	return append(dst, r.Err...)
}

// ParseExploreReport decodes a shard report; trailing bytes are the
// failure message.
func ParseExploreReport(payload []byte) (mc.Report, error) {
	var r mc.Report
	pos := 0
	uv := func(name string, max uint64) (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("explore report: truncated %s field", name)
		}
		pos += n
		if v > max {
			return 0, fmt.Errorf("explore report: %s %d out of range", name, v)
		}
		return v, nil
	}
	fields := []struct {
		name string
		max  uint64
		set  func(uint64)
	}{
		{"shard", maxExploreShards - 1, func(v uint64) { r.Shard = int(v) }},
		{"items in", 1 << 62, func(v uint64) { r.ItemsIn = int64(v) }},
		{"items out", 1 << 62, func(v uint64) { r.ItemsOut = int64(v) }},
		{"states", 1 << 62, func(v uint64) { r.States = int64(v) }},
		{"transitions", 1 << 62, func(v uint64) { r.Transitions = int64(v) }},
		{"peak ids", 1 << 32, func(v uint64) { r.PeakIDs = int(v) }},
		{"depth", 1 << 32, func(v uint64) { r.Depth = int(v) }},
		{"pending", 1 << 62, func(v uint64) { r.Pending = int64(v) }},
		{"queue length", 1 << 62, func(v uint64) { r.QueueLen = int64(v) }},
		{"collisions", 1 << 62, func(v uint64) { r.Collisions = int64(v) }},
		{"capped", 1, func(v uint64) { r.Capped = v != 0 }},
		{"depth capped", 1, func(v uint64) { r.DepthCapped = v != 0 }},
		{"failed", 1, func(v uint64) { r.Failed = v != 0 }},
	}
	for _, f := range fields {
		v, err := uv(f.name, f.max)
		if err != nil {
			return mc.Report{}, err
		}
		f.set(v)
	}
	r.Err = string(payload[pos:])
	if r.Err != "" && !r.Failed {
		return mc.Report{}, fmt.Errorf("explore report: error message without failed marker")
	}
	return r, nil
}

// AppendExploreViolation encodes a violation: the counterexample path and
// the rejection message as trailing bytes.
func AppendExploreViolation(dst []byte, path []int, msg string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(path)))
	for _, idx := range path {
		dst = binary.AppendUvarint(dst, uint64(idx))
	}
	return append(dst, msg...)
}

// ParseExploreViolation decodes a violation frame.
func ParseExploreViolation(payload []byte) ([]int, string, error) {
	pos := 0
	plen, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, "", fmt.Errorf("explore violation: truncated path length")
	}
	pos += n
	if plen > maxExplorePath {
		return nil, "", fmt.Errorf("explore violation: path length %d out of range", plen)
	}
	path := make([]int, plen)
	for i := range path {
		idx, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return nil, "", fmt.Errorf("explore violation: truncated path index")
		}
		pos += n
		if idx > maxExplorePath {
			return nil, "", fmt.Errorf("explore violation: path index %d out of range", idx)
		}
		path[i] = int(idx)
	}
	return path, string(payload[pos:]), nil
}
