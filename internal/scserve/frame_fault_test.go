package scserve

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/faultnet"
)

// sampleFrames covers every frame type the protocol defines, with both
// minimal and extended payload shapes.
func sampleFrames(t *testing.T) map[string]struct {
	typ     byte
	payload []byte
} {
	t.Helper()
	rej, _ := SyntheticReject(2)
	resume := Header{K: 5, Token: "resume-token", Resume: true, AckSymbol: 128, AckOffset: 900}
	return map[string]struct {
		typ     byte
		payload []byte
	}{
		"hello-legacy":    {frameHello, appendHello(nil, SyntheticHeader())},
		"hello-token":     {frameHello, appendHello(nil, Header{K: 5, Token: "tok"})},
		"hello-resume":    {frameHello, appendHello(nil, resume)},
		"symbols":         {frameSymbols, descriptor.Marshal(rej)},
		"symbols-empty":   {frameSymbols, nil},
		"end":             {frameEnd, nil},
		"stats-req":       {frameStatsReq, nil},
		"verdict":         {frameVerdict, appendVerdict(nil, Verdict{Code: VerdictAccept, Symbol: -1, Offset: -1, Msg: "ok"})},
		"verdict-witness": {frameVerdict, appendVerdict(nil, Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 5, CycleLen: 4, Msg: "cycle"})},
		"stats-reply":     {frameStatsReply, []byte(`{"sessions_total":7}`)},
		"ack":             {frameAck, appendAck(nil, 4096, 123456)},
	}
}

// frameBytes renders a frame to its wire bytes.
func frameBytes(t *testing.T, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, typ, payload); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	return buf.Bytes()
}

// TestFrameParserEveryBoundary delivers every frame type split at every
// byte boundary (two writes per split point) and asserts the parser
// reassembles it byte-exactly.
func TestFrameParserEveryBoundary(t *testing.T) {
	for name, fr := range sampleFrames(t) {
		t.Run(name, func(t *testing.T) {
			wire := frameBytes(t, fr.typ, fr.payload)
			for cut := 0; cut <= len(wire); cut++ {
				server, client := net.Pipe()
				go func() {
					client.Write(wire[:cut])
					time.Sleep(time.Millisecond)
					client.Write(wire[cut:])
					client.Close()
				}()
				server.SetReadDeadline(time.Now().Add(5 * time.Second))
				typ, payload, err := readFrame(bufio.NewReader(server), 1<<20)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				if typ != fr.typ || !bytes.Equal(payload, fr.payload) {
					t.Fatalf("cut %d: frame (%#x, %d bytes) != original (%#x, %d bytes)",
						cut, typ, len(payload), fr.typ, len(fr.payload))
				}
				server.Close()
			}
		})
	}
}

// TestFrameParserThroughFaultnet streams every frame type back to back
// through a faultnet link fragmenting at single-byte granularity on both
// sides — the worst-case partial-write/short-read schedule — and asserts
// the whole sequence survives intact and in order.
func TestFrameParserThroughFaultnet(t *testing.T) {
	frames := sampleFrames(t)
	names := make([]string, 0, len(frames))
	var wire []byte
	for name, fr := range frames {
		names = append(names, name)
		wire = append(wire, frameBytes(t, fr.typ, fr.payload)...)
	}

	server, client := net.Pipe()
	fc := faultnet.Wrap(client, faultnet.Config{Seed: 7, WriteChunk: 1}, nil)
	fs := faultnet.Wrap(server, faultnet.Config{Seed: 11, ReadChunk: 1}, nil)
	go func() {
		fc.Write(wire)
		fc.Close()
	}()

	server.SetReadDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReaderSize(fs, 8) // tiny buffer: force many short fills
	for i := range names {
		typ, payload, err := readFrame(br, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		matched := false
		for name, fr := range frames {
			if typ == fr.typ && bytes.Equal(payload, fr.payload) {
				delete(frames, name)
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("frame %d (type %#x, %d bytes) matches no remaining sample", i, typ, len(payload))
		}
	}
	if _, _, err := readFrame(br, 1<<20); err != io.EOF {
		t.Fatalf("trailing read: %v, want EOF", err)
	}
	if fc.Stats().PartialWrites.Load() == 0 || fs.Stats().ShortReads.Load() == 0 {
		t.Fatal("fault injection did not fire")
	}
}

// TestSessionThroughFaultnet runs a complete client session over a
// fragmenting fault link against a real server connection handler: the
// verdict must be exactly the clean-link verdict.
func TestSessionThroughFaultnet(t *testing.T) {
	stream, rejectIdx := SyntheticReject(40)
	for _, seed := range []int64{1, 2, 3} {
		server, client := net.Pipe()
		srv := New(Config{ReadTimeout: 10 * time.Second})
		srv.wg.Add(1)
		go srv.handleConn(server)

		fc := faultnet.Wrap(client, faultnet.Config{Seed: seed, WriteChunk: 3, ReadChunk: 2}, nil)
		c := NewClient(fc, 10*time.Second)
		v, err := c.Check(SyntheticHeader(), stream)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v.Code != VerdictReject || v.Symbol != rejectIdx {
			t.Fatalf("seed %d: verdict %v, want reject at %d", seed, v, rejectIdx)
		}
		c.Close()
	}
}
