//go:build !race

package scserve

const raceEnabled = false
