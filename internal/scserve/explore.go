package scserve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"scverify/internal/mc"
	"scverify/internal/registry"
)

// exploreReportInterval paces unsolicited progress reports so the
// coordinator's credit view and the operator's per-shard progress stay
// fresh without flooding the wire. Idle transitions additionally publish
// a report immediately — that report, ordered after the engine's last
// emitted items on the same stream, is what quiescence detection runs on.
const exploreReportInterval = 50 * time.Millisecond

// runExploreSession drives one distributed-exploration shard session: it
// builds the registry target named in the hello's explore extension,
// runs an mc.Explorer over it, and relays items, reports, and violations
// between the engine and the coordinator. It reports whether the
// connection is still in a known-good state for another session.
//
// The verdict discipline mirrors symbol sessions: the only accept this
// session ever sends is the answer to the coordinator's end frame, after
// the engine has stopped and its final credit report is on the wire.
// Everything abnormal — bad target, engine failure, write error — ends in
// a protocol-error verdict or a dead connection, both of which the
// coordinator degrades to an incomplete grid verdict, never a verified.
func (s *Server) runExploreSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, h Header) bool {
	id := s.sessionsTotal.Add(1)
	defer s.adm.release(h.Tenant)
	if tc := s.tenantC(h.Tenant, true); tc != nil {
		tc.sessions.Add(1)
	}
	eh := h.Explore
	s.exploreSessions.Add(1)
	s.event("explore_open", "session", id, "tenant", h.Tenant, "remote", conn.RemoteAddr().String(),
		"protocol", eh.Protocol, "shard", eh.Shard, "shards", len(eh.Shards))

	fail := func(msg string) bool {
		s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: msg})
		return false
	}

	target, err := registry.Build(eh.Protocol, registry.Options{Params: h.Params, QueueCap: eh.QueueCap})
	if err != nil {
		return fail("explore: " + err.Error())
	}

	maxStates := eh.MaxStates
	if maxStates == 0 || maxStates > s.cfg.ExploreMaxStates {
		maxStates = s.cfg.ExploreMaxStates
	}

	// All frame writes below share one mutex: the engine emits from its
	// worker goroutines, the report ticker from its own, and the read loop
	// answers stats requests. Write failures close the connection so the
	// read loop observes the death promptly.
	var writeMu sync.Mutex
	writeErr := func(err error) {
		if err != nil {
			conn.Close()
		}
	}
	send := func(typ byte, payload []byte) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		s.armWrite(conn)
		if err := writeFrame(bw, typ, payload); err != nil {
			return err
		}
		return bw.Flush()
	}

	var x *mc.Explorer
	sendReport := func() error {
		return send(frameExploreRep, AppendExploreReport(nil, x.Report()))
	}

	x, err = mc.NewExplorer(target.Protocol, mc.ProductOptions{PoolSize: target.PoolSize, Generator: target.Generator}, mc.ExplorerConfig{
		Shard:     eh.Shard,
		ShardIDs:  eh.Shards,
		Workers:   s.cfg.ExploreWorkers,
		MaxStates: maxStates,
		MaxDepth:  eh.MaxDepth,
		Exact:     eh.Mode == ExploreModeExact,
		Audit:     eh.Mode == ExploreModeAudit,
		StepDelay: s.cfg.ExploreStepDelay,
		Emit: func(items []mc.Item) {
			for len(items) > 0 {
				n := len(items)
				if n > maxExploreItems {
					n = maxExploreItems
				}
				if err := send(frameExploreFwd, AppendExploreItems(nil, items[:n])); err != nil {
					writeErr(err)
					return
				}
				s.exploreForwards.Add(int64(n))
				items = items[n:]
			}
		},
		OnViolation: func(path []int, verr error) {
			s.exploreViolations.Add(1)
			s.event("explore_violation", "session", id, "depth", len(path))
			writeErr(send(frameExploreViol, AppendExploreViolation(nil, path, verr.Error())))
		},
		OnIdle: func() {
			writeErr(sendReport())
		},
	})
	if err != nil {
		return fail("explore: " + err.Error())
	}
	defer x.Stop()

	if x.K() != h.K {
		x.Stop()
		return fail(fmt.Sprintf("explore: hello k=%d but target %q has k=%d", h.K, eh.Protocol, x.K()))
	}

	// The first report doubles as the ready signal: the coordinator seeds
	// shard 0 only after every shard has one.
	if err := sendReport(); err != nil {
		s.sessionsAborted.Add(1)
		return false
	}

	tickerDone := make(chan struct{})
	var tickerWG sync.WaitGroup
	tickerWG.Add(1)
	go func() {
		defer tickerWG.Done()
		tick := time.NewTicker(exploreReportInterval)
		defer tick.Stop()
		for {
			select {
			case <-tickerDone:
				return
			case <-tick.C:
				if err := sendReport(); err != nil {
					return
				}
			}
		}
	}()
	stopTicker := func() {
		close(tickerDone)
		tickerWG.Wait()
	}

	settle := func() {
		r := x.Report()
		s.exploreStates.Add(r.States)
		s.exploreTransitions.Add(r.Transitions)
	}

	for {
		typ, payload, err := s.readFrame(conn, br)
		if err != nil {
			stopTicker()
			x.Stop()
			settle()
			s.sessionsAborted.Add(1)
			s.event("explore_abort", "session", id, "tenant", h.Tenant)
			s.logf("scserve: %s: explore session aborted: %v", conn.RemoteAddr(), err)
			return false
		}
		switch typ {
		case frameExplore:
			items, perr := ParseExploreItems(payload)
			if perr != nil {
				stopTicker()
				x.Stop()
				settle()
				return fail(perr.Error())
			}
			x.Deliver(items)
		case frameEnd:
			stopTicker()
			x.Stop()
			settle()
			if err := sendReport(); err != nil {
				s.sessionsAborted.Add(1)
				return false
			}
			v := Verdict{Code: VerdictAccept, Symbol: -1, Offset: -1, Msg: "explore session closed"}
			s.countTenantVerdict(h.Tenant, v)
			s.event("verdict", "session", id, "tenant", h.Tenant, "code", v.Code.String())
			if err := s.sendVerdict(conn, bw, v); err != nil {
				s.sessionsAborted.Add(1)
				return false
			}
			return !s.isClosed()
		case frameStatsReq:
			// Stats go through the shared write mutex: the report ticker
			// and engine emits are live while the read loop answers these.
			payload, merr := json.Marshal(s.Stats())
			if merr == nil {
				merr = send(frameStatsReply, payload)
			}
			if merr != nil {
				stopTicker()
				x.Stop()
				settle()
				s.sessionsAborted.Add(1)
				return false
			}
		default:
			stopTicker()
			x.Stop()
			settle()
			s.sessionsAborted.Add(1)
			return fail(fmt.Sprintf("unexpected frame type %#x inside explore session", typ))
		}
	}
}
