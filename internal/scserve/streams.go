package scserve

import (
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// SyntheticK is the bandwidth bound SyntheticAccept and SyntheticReject
// streams are encoded for.
const SyntheticK = 3

// SyntheticHeader returns the session header matching the synthetic
// streams below.
func SyntheticHeader() Header {
	return Header{K: SyntheticK, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}}
}

// SyntheticAccept returns an SC descriptor stream of at least n symbols
// (n ≥ 3): one store followed by a program-order chain of loads that all
// inherit from it. The checker accepts it at every prefix length produced
// here. Used by the smoke tests and the bench mode, where verdict
// correctness must be known a priori.
func SyntheticAccept(n int) descriptor.Stream {
	st := trace.ST(1, 1, 1)
	ld := trace.LD(1, 1, 1)
	s := descriptor.Stream{
		descriptor.Node{ID: 1, Op: &st},
		descriptor.Node{ID: 2, Op: &ld},
		descriptor.Edge{From: 1, To: 2, Label: descriptor.POInh},
	}
	prev, next := 2, 3
	for len(s) < n {
		s = append(s,
			descriptor.Node{ID: next, Op: &ld},
			descriptor.Edge{From: prev, To: next, Label: descriptor.PO},
			descriptor.Edge{From: 1, To: next, Label: descriptor.Inh},
		)
		prev, next = next, prev
	}
	return s
}

// SyntheticReject returns a stream whose prefix is SyntheticAccept(prefix)
// followed by a store-order/program-order cycle, together with the
// zero-based index of the symbol at which the checker rejects (the edge
// that closes the cycle).
func SyntheticReject(prefix int) (descriptor.Stream, int) {
	s := SyntheticAccept(prefix)
	st1 := trace.ST(1, 1, 1)
	st2 := trace.ST(1, 1, 2)
	// The two fresh stores recycle the load IDs 2 and 3; the PO edge
	// against the STo edge closes a two-node cycle.
	s = append(s,
		descriptor.Node{ID: 2, Op: &st1},
		descriptor.Node{ID: 3, Op: &st2},
		descriptor.Edge{From: 2, To: 3, Label: descriptor.STo},
		descriptor.Edge{From: 3, To: 2, Label: descriptor.PO},
	)
	return s, len(s) - 1
}
