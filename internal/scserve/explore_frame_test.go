package scserve

import (
	"reflect"
	"strings"
	"testing"

	"scverify/internal/descriptor"
	"scverify/internal/mc"
	"scverify/internal/trace"
)

// These tests pin the explore extension the same way the tier and tenant
// suites pin theirs: the flag-gated hello parses and round-trips, every
// malformed shape is a clean named error, and — the mixed-fleet
// invariant — an explore-free hello stays byte-identical to the legacy
// encoding.

func exploreHeader() Header {
	return Header{
		K:      SyntheticK,
		Params: trace.Params{Procs: 1, Blocks: 1, Values: 2},
		Explore: &ExploreHeader{
			Protocol:  "serial",
			Shard:     1,
			Shards:    []string{"10.0.0.1:7541", "10.0.0.2:7541", "10.0.0.3:7541"},
			MaxStates: 1 << 20,
			MaxDepth:  64,
			Mode:      ExploreModeAudit,
		},
	}
}

func TestExploreHelloRoundTrip(t *testing.T) {
	h := exploreHeader()
	got, err := parseHello(appendHello(nil, h))
	if err != nil {
		t.Fatalf("explore hello rejected: %v", err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("explore hello round trip: %+v -> %+v", h, got)
	}

	// The explore flag is mutually exclusive with every symbol-session
	// extension: a session is either a descriptor stream or a shard, never
	// both, and the parser enforces it rather than leaving the combination
	// undefined.
	for name, mix := range map[string]func(*Header){
		"novalues": func(h *Header) { h.NoValues = true },
		"token":    func(h *Header) { h.Token = "tok" },
		"tiered":   func(h *Header) { h.Tiered = true },
	} {
		bad := exploreHeader()
		mix(&bad)
		if _, err := parseHello(appendHello(nil, bad)); err == nil {
			t.Errorf("explore+%s hello parsed without error", name)
		}
	}

	// An explore-free hello must stay byte-identical to the legacy wire
	// format — the flag costs nothing for peers that do not set it.
	legacy := Header{K: SyntheticK, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}}
	enc := appendHello(nil, legacy)
	want := []byte{protocolVersion, SyntheticK, 1, 1, 2, 0}
	if string(enc) != string(want) {
		t.Fatalf("explore-free hello encoding changed: % x, want % x", enc, want)
	}

	// The registry mask knows the bit: a hello with the explore flag but a
	// truncated extension fails as a clean parse error.
	trunc := helloWithFlags(uint64(descriptor.HelloFlagExplore))
	if _, err := parseHello(trunc); err == nil {
		t.Fatal("truncated explore hello parsed without error")
	}

	// Unknown visited-set modes are rejected, not defaulted: a newer
	// coordinator cannot silently get the wrong visited semantics.
	future := exploreHeader()
	future.Explore.Mode = ExploreModeAudit + 1
	if _, err := parseHello(appendHello(nil, future)); err == nil {
		t.Fatal("unknown explore mode parsed without error")
	} else if !strings.Contains(err.Error(), "mode") {
		t.Fatalf("error %q does not name the mode", err)
	}

	// Shard index outside the identity list is structurally invalid.
	oob := exploreHeader()
	oob.Explore.Shard = len(oob.Explore.Shards)
	if _, err := parseHello(appendHello(nil, oob)); err == nil {
		t.Fatal("out-of-range shard index parsed without error")
	}
}

func TestExploreItemsRoundTrip(t *testing.T) {
	items := []mc.Item{
		{Kind: mc.ItemWork, Peer: 0, Act: mc.ActClaim},
		{Kind: mc.ItemWork, Peer: 3, Act: mc.ActFreshExpand, Path: []int{0, 7, 2, 11}},
		{Kind: mc.ItemClaim, Peer: 1, Seq: 42, FP: 0xdeadbeefcafef00d, Depth: 9},
		{Kind: mc.ItemClaim, Peer: 2, Seq: 43, FP: 1, Depth: 0, Key: []byte("exact-canonical-key")},
		{Kind: mc.ItemReply, Peer: 0, Seq: 42, Act: mc.ActDup},
		{Kind: mc.ItemReply, Peer: 1, Seq: 43, Act: mc.ActExpandCount},
		{Kind: mc.ItemShed, Peer: 2, N: 128, Target: 0},
	}
	got, err := ParseExploreItems(AppendExploreItems(nil, items))
	if err != nil {
		t.Fatalf("item batch rejected: %v", err)
	}
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("item batch round trip:\n%+v\n->\n%+v", items, got)
	}

	// Structurally invalid batches are named errors, never accepted.
	for name, bad := range map[string][]byte{
		"empty":            nil,
		"unknown kind":     {1, 4, 0},
		"work dup act":     {1, 0, 0, 1, 0},
		"reply unadjudged": {1, 2, 0, 5, 0},
		"empty shed":       {1, 3, 0, 0, 1},
		"trailing bytes":   append(AppendExploreItems(nil, items[:1]), 0xff),
		"truncated claim":  {1, 1, 0, 5, 1, 2, 3},
	} {
		if _, err := ParseExploreItems(bad); err == nil {
			t.Errorf("%s batch parsed without error", name)
		}
	}
}

func TestExploreReportRoundTrip(t *testing.T) {
	reports := []mc.Report{
		{},
		{Shard: 3, ItemsIn: 1000, ItemsOut: 998, States: 40000, Transitions: 200000,
			PeakIDs: 12, Depth: 31, Pending: 4, QueueLen: 77, Collisions: 2},
		{Shard: 1, Capped: true, DepthCapped: true},
		{Shard: 0, Failed: true, Err: "pool exhausted"},
	}
	for _, r := range reports {
		got, err := ParseExploreReport(AppendExploreReport(nil, r))
		if err != nil {
			t.Fatalf("report %+v rejected: %v", r, err)
		}
		if got != r {
			t.Fatalf("report round trip: %+v -> %+v", r, got)
		}
	}

	// A failure message without the failed marker would let line noise
	// smuggle an error string into a healthy report.
	healthy := AppendExploreReport(nil, mc.Report{Shard: 1})
	if _, err := ParseExploreReport(append(healthy, "oops"...)); err == nil {
		t.Fatal("error message without failed marker parsed without error")
	}
	if _, err := ParseExploreReport(nil); err == nil {
		t.Fatal("empty report parsed without error")
	}
}

func TestExploreViolationRoundTrip(t *testing.T) {
	path := []int{3, 0, 0, 9, 1}
	gotPath, gotMsg, err := ParseExploreViolation(AppendExploreViolation(nil, path, "checker: cycle"))
	if err != nil {
		t.Fatalf("violation rejected: %v", err)
	}
	if !reflect.DeepEqual(gotPath, path) || gotMsg != "checker: cycle" {
		t.Fatalf("violation round trip: (%v, %q)", gotPath, gotMsg)
	}
	if _, _, err := ParseExploreViolation(nil); err == nil {
		t.Fatal("empty violation parsed without error")
	}
	if _, _, err := ParseExploreViolation([]byte{5, 1, 2}); err == nil {
		t.Fatal("truncated violation path parsed without error")
	}
}

// FuzzExploreFrame fuzzes every explore payload parser behind a selector
// byte: parsers must never panic, and any payload they accept must
// re-encode and re-parse to the same value — the round-trip law the
// coordinator's relay loop depends on (it re-encodes items it routes).
func FuzzExploreFrame(f *testing.F) {
	items := []mc.Item{
		{Kind: mc.ItemWork, Peer: 0, Act: mc.ActClaim},
		{Kind: mc.ItemWork, Peer: 3, Act: mc.ActExpand, Path: []int{0, 7, 2}},
		{Kind: mc.ItemClaim, Peer: 1, Seq: 42, FP: 0xdeadbeefcafef00d, Depth: 9, Key: []byte("k")},
		{Kind: mc.ItemReply, Peer: 0, Seq: 42, Act: mc.ActFreshFinish},
		{Kind: mc.ItemShed, Peer: 2, N: 64, Target: 0},
	}
	f.Add(byte(0), AppendExploreItems(nil, items))
	f.Add(byte(0), AppendExploreItems(nil, nil))
	f.Add(byte(1), AppendExploreReport(nil, mc.Report{Shard: 2, ItemsIn: 9, States: 1000, Failed: true, Err: "x"}))
	f.Add(byte(1), AppendExploreReport(nil, mc.Report{Capped: true, DepthCapped: true}))
	f.Add(byte(2), AppendExploreViolation(nil, []int{1, 2, 3}, "cycle"))
	f.Add(byte(3), appendHello(nil, exploreHeader()))
	f.Add(byte(3), helloWithFlags(uint64(descriptor.HelloFlagExplore), 6, 's', 'e', 'r', 'i', 'a', 'l'))
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, sel byte, payload []byte) {
		switch sel % 4 {
		case 0:
			if its, err := ParseExploreItems(payload); err == nil {
				back, err2 := ParseExploreItems(AppendExploreItems(nil, its))
				if err2 != nil || !reflect.DeepEqual(back, its) {
					t.Fatalf("items round trip: %+v -> %+v (%v)", its, back, err2)
				}
			}
		case 1:
			if r, err := ParseExploreReport(payload); err == nil {
				back, err2 := ParseExploreReport(AppendExploreReport(nil, r))
				if err2 != nil || back != r {
					t.Fatalf("report round trip: %+v -> %+v (%v)", r, back, err2)
				}
			}
		case 2:
			if path, msg, err := ParseExploreViolation(payload); err == nil {
				p2, m2, err2 := ParseExploreViolation(AppendExploreViolation(nil, path, msg))
				if err2 != nil || !reflect.DeepEqual(p2, path) || m2 != msg {
					t.Fatalf("violation round trip: (%v, %q) -> (%v, %q) (%v)", path, msg, p2, m2, err2)
				}
			}
		case 3:
			if h, err := parseHello(payload); err == nil {
				back, err2 := parseHello(appendHello(nil, h))
				if err2 != nil || !reflect.DeepEqual(back, h) {
					t.Fatalf("hello round trip: %+v -> %+v (%v)", h, back, err2)
				}
				if h.Explore != nil && (h.NoValues || h.Token != "" || h.Resume || h.Tiered) {
					t.Fatalf("parseHello accepted explore alongside symbol-session flags: %+v", h)
				}
			}
		}
	})
}
