// Package scserve turns the per-run SC-checking pipeline into a long-lived
// concurrent network service: the online half of the testing deployment of
// Section 5 of Condon & Hu, where observers embedded in running systems
// emit descriptor streams and a central adjudicator accepts or rejects
// them. Clients open length-framed sessions over TCP (see frame.go for the
// protocol), stream descriptor wire bytes, and receive one structured
// verdict per session; each session runs a dedicated checker.Checker in
// its own goroutine behind a bounded byte queue, so a fast producer is
// throttled by TCP backpressure rather than buffered without bound.
//
// Sessions that announce a resume token are additionally fault tolerant:
// the server clones the checker at symbol boundaries (checker.Clone),
// retains the newest clone under the token, and acks the checkpointed
// position; a client that loses its connection reopens the session with
// the token and replays only its unacked tail. The invariant throughout
// is degrade-to-error, never wrong-verdict — a fault can cost a session
// an error, but every verdict actually delivered is the deterministic
// checker's verdict over the exact bytes the client streamed.
package scserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/witness"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("scserve: server closed")

// errSessionOver unblocks a producer once its session has a verdict.
var errSessionOver = errors.New("scserve: session terminated")

// errClientGone aborts a checker whose client vanished mid-session.
var errClientGone = errors.New("scserve: client connection lost")

// Config tunes a Server. The zero value gets sane defaults from New.
type Config struct {
	// MaxSessions caps concurrently open sessions; further hellos receive
	// a clean busy verdict (Verdict.Busy) and the connection stays
	// usable. Default 256.
	MaxSessions int
	// MaxFrame caps a frame payload in bytes. Default 1 MiB.
	MaxFrame int
	// MaxK caps the bandwidth bound a session may request — the checker
	// allocates Θ(k²) state, so k is a resource the client must not
	// control unboundedly. Default 4096.
	MaxK int
	// QueueBytes bounds each session's symbol queue (frame reader to
	// checker goroutine). Default 64 KiB.
	QueueBytes int
	// ReadTimeout bounds each frame read; it doubles as the idle timeout
	// between sessions on a kept-alive connection. 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each server write (verdicts, acks, stats), so a
	// client that stops reading cannot park a handler forever. Default 1m;
	// negative disables.
	WriteTimeout time.Duration
	// AckInterval is the number of symbols between checkpoints on token
	// sessions (checker clone + ack frame). Default 1024.
	AckInterval int
	// ResumeMaxSessions caps retained checkpoints (resume tokens); the
	// least recently touched is evicted first. Default 1024.
	ResumeMaxSessions int
	// ResumeMaxBytes caps the accounted memory of retained checkpoints.
	// Default 64 MiB.
	ResumeMaxBytes int64
	// ResumeTTL expires checkpoints untouched for this long. Default 15m;
	// negative disables.
	ResumeTTL time.Duration
	// TierLimit bounds the size (in operations) of the minimized witness
	// core the server re-adjudicates against the weaker-model ladder for
	// sessions that opted in via Header.Tiered. 0 means the spectrum
	// default; negative disables tiering entirely (opted-in sessions get
	// plain verdicts — a missing tier is always legal, a wrong one never).
	TierLimit int
	// TierMaxSymbols caps the stream length retained for tier
	// adjudication; longer streams are rejected untier-ed. Default 4096.
	TierMaxSymbols int
	// AdmitWait is how long an over-capacity hello may park in the
	// fair-share admission queue before receiving the busy verdict. 0
	// disables waiting (immediate busy, the pre-queue behavior).
	AdmitWait time.Duration
	// AdmitQueue caps parked hellos. Default MaxSessions.
	AdmitQueue int
	// TenantSessions caps one tenant's concurrent sessions; over-cap
	// hellos receive the typed quota verdict (Verdict.Quota). 0 uncaps.
	// The anonymous tenant "" is exempt (identification is opt-in).
	TenantSessions int
	// TenantWeights sets fair-share weights for the admission queue;
	// missing or non-positive entries weigh 1. Freed slots go to the
	// waiting tenant with the lowest active/weight deficit.
	TenantWeights map[string]int
	// TenantBytesPerSec rate-limits each identified tenant's symbol
	// bytes through a token bucket; a session that overdraws receives
	// the quota verdict mid-stream (its checkpoint, if any, survives for
	// a later resume). 0 disables.
	TenantBytesPerSec int64
	// TenantBurstBytes is the bucket size for TenantBytesPerSec.
	// Default: one second's worth.
	TenantBurstBytes int64
	// ExploreWorkers is the expansion worker count for each explore
	// session's engine shard; 0 means GOMAXPROCS.
	ExploreWorkers int
	// ExploreMaxStates clamps the per-shard visited-set cap an explore
	// hello may request. Default 4M; a hello asking for more is clamped,
	// never trusted (hitting the clamp degrades the grid verdict to
	// incomplete, not to a wrong verified).
	ExploreMaxStates int
	// ExploreStepDelay sleeps before each state expansion in explore
	// sessions — the simulated per-state latency the scaling bench uses
	// (zero in production).
	ExploreStepDelay time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// Log, when set, receives structured connection-path events
	// (session open/verdict/abort, drains, quota hits) with session ID
	// and tenant attributes — the operator-facing counterpart of Logf.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 20
	}
	if c.MaxK <= 0 {
		c.MaxK = 4096
	}
	if c.QueueBytes <= 0 {
		c.QueueBytes = 64 << 10
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = time.Minute
	}
	if c.AckInterval <= 0 {
		c.AckInterval = 1024
	}
	if c.ResumeMaxSessions <= 0 {
		c.ResumeMaxSessions = 1024
	}
	if c.ResumeMaxBytes <= 0 {
		c.ResumeMaxBytes = 64 << 20
	}
	if c.ResumeTTL == 0 {
		c.ResumeTTL = 15 * time.Minute
	}
	if c.TierMaxSymbols <= 0 {
		c.TierMaxSymbols = 4096
	}
	if c.TenantBytesPerSec > 0 && c.TenantBurstBytes <= 0 {
		c.TenantBurstBytes = c.TenantBytesPerSec
	}
	if c.ExploreMaxStates <= 0 {
		c.ExploreMaxStates = 4 << 20
	}
	return c
}

// Stats is a snapshot of the server's counters, served to clients as JSON
// in stats frames.
type Stats struct {
	SessionsTotal   int64   `json:"sessions_total"`
	SessionsActive  int64   `json:"sessions_active"`
	SessionsAborted int64   `json:"sessions_aborted"`
	Accepts         int64   `json:"accepts"`
	Rejects         int64   `json:"rejects"`
	ProtocolErrors  int64   `json:"protocol_errors"`
	Busy            int64   `json:"busy"`
	SymbolsTotal    int64   `json:"symbols_total"`
	QueueBytes      int64   `json:"queue_bytes"`
	Checkpoints     int64   `json:"checkpoints"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	Resumes         int64   `json:"resumes"`
	ResumeReplays   int64   `json:"resume_replays"`
	ResumeMisses    int64   `json:"resume_misses"`
	TiersComputed   int64   `json:"tiers_computed"`
	Draining        bool    `json:"draining"`
	Drains          int64   `json:"drains"`
	DrainRejects    int64   `json:"drain_rejects"`
	QuotaRejects    int64   `json:"quota_rejects"`
	AdmitParked     int64   `json:"admit_parked"`

	// Explore-session (distributed exploration shard) counters.
	ExploreSessions    int64 `json:"explore_sessions"`
	ExploreStates      int64 `json:"explore_states"`
	ExploreTransitions int64 `json:"explore_transitions"`
	ExploreForwards    int64 `json:"explore_forwards"`
	ExploreViolations  int64 `json:"explore_violations"`

	UptimeSeconds   float64 `json:"uptime_seconds"`
	SessionsPerSec  float64 `json:"sessions_per_sec"`
	SymbolsPerSec   float64 `json:"symbols_per_sec"`

	// Tenants breaks the counters down by identified tenant (hellos
	// carrying the tenant field); anonymous traffic appears only in the
	// global counters above.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one identified tenant's slice of the counters.
type TenantStats struct {
	Sessions     int64 `json:"sessions"`
	Active       int64 `json:"active"`
	Accepts      int64 `json:"accepts"`
	Rejects      int64 `json:"rejects"`
	Busy         int64 `json:"busy"`
	QuotaRejects int64 `json:"quota_rejects"`
	Bytes        int64 `json:"bytes"`
}

// String renders the operator-facing one-liner.
func (st Stats) String() string {
	s := fmt.Sprintf("sessions %d (%d active, %d aborted), verdicts %d/%d/%d accept/reject/error, %d busy, %d symbols, queue %dB, %d checkpoints (%dB, %d resumes/%d replays/%d misses), %.0f symbols/s",
		st.SessionsTotal, st.SessionsActive, st.SessionsAborted,
		st.Accepts, st.Rejects, st.ProtocolErrors, st.Busy, st.SymbolsTotal, st.QueueBytes,
		st.Checkpoints, st.CheckpointBytes, st.Resumes, st.ResumeReplays, st.ResumeMisses, st.SymbolsPerSec)
	if st.Draining {
		s += " [DRAINING]"
	}
	if st.Drains > 0 || st.DrainRejects > 0 || st.QuotaRejects > 0 || st.AdmitParked > 0 {
		s += fmt.Sprintf(", %d drains (%d refused), %d quota rejects, %d parked",
			st.Drains, st.DrainRejects, st.QuotaRejects, st.AdmitParked)
	}
	if st.ExploreSessions > 0 {
		s += fmt.Sprintf(", explore: %d sessions, %d states, %d transitions, %d forwards, %d violations",
			st.ExploreSessions, st.ExploreStates, st.ExploreTransitions, st.ExploreForwards, st.ExploreViolations)
	}
	return s
}

// Server is the concurrent SC-checking service. Construct with New, start
// with Serve, stop with Shutdown.
type Server struct {
	cfg    Config
	start  time.Time
	resume *resumeStore
	adm    *admission

	mu     sync.Mutex
	lns    map[net.Listener]bool // guarded by mu
	conns  map[net.Conn]bool     // guarded by mu
	closed bool                  // guarded by mu; set by Shutdown

	wg sync.WaitGroup // one per connection handler

	// drainMode is the soft drain, distinct from Shutdown: listeners
	// stay open, in-flight and resuming sessions run to their verdicts,
	// but fresh hellos are refused with the draining verdict so a
	// dispatcher redirects them. Flipped by Drain/Undrain (SIGUSR1 or
	// the drain admin frame in the daemons).
	drainMode atomic.Bool

	tenantMu sync.Mutex
	tenants  map[string]*tenantCounters // guarded by tenantMu (map only)

	sessionsTotal   atomic.Int64
	sessionsActive  atomic.Int64
	sessionsAborted atomic.Int64
	accepts         atomic.Int64
	rejects         atomic.Int64
	protoErrs       atomic.Int64
	busy            atomic.Int64
	symbolsTotal    atomic.Int64
	queueBytes      atomic.Int64
	resumes         atomic.Int64
	resumeReplays   atomic.Int64
	resumeMisses    atomic.Int64
	tiersComputed   atomic.Int64
	drains          atomic.Int64
	drainRejects    atomic.Int64
	quotaRejects    atomic.Int64
	admitParked     atomic.Int64

	exploreSessions    atomic.Int64
	exploreStates      atomic.Int64
	exploreTransitions atomic.Int64
	exploreForwards    atomic.Int64
	exploreViolations  atomic.Int64
}

// tenantCounters is one identified tenant's counter slice plus its
// byte-quota token bucket.
type tenantCounters struct {
	sessions atomic.Int64
	accepts  atomic.Int64
	rejects  atomic.Int64
	busy     atomic.Int64
	quota    atomic.Int64
	bytes    atomic.Int64

	mu     sync.Mutex
	tokens float64   // byte-quota bucket level, guarded by mu
	last   time.Time // last refill, guarded by mu
}

// New returns a server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		resume:  newResumeStore(cfg.ResumeMaxSessions, cfg.ResumeMaxBytes, cfg.ResumeTTL),
		lns:     make(map[net.Listener]bool),
		conns:   make(map[net.Conn]bool),
		tenants: make(map[string]*tenantCounters),
	}
	s.adm = newAdmission(cfg, &s.sessionsActive, &s.admitParked)
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// event emits one structured connection-path event when Config.Log is
// set; args are alternating slog key/value pairs.
func (s *Server) event(ev string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Info(ev, args...)
	}
}

// tenantC returns the counters of an identified tenant, creating them on
// first sight when create is set. The anonymous tenant "" has none.
func (s *Server) tenantC(tenant string, create bool) *tenantCounters {
	if tenant == "" {
		return nil
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	tc := s.tenants[tenant]
	if tc == nil && create {
		tc = &tenantCounters{}
		s.tenants[tenant] = tc
	}
	return tc
}

// countTenantVerdict folds a delivered verdict into the tenant's
// counters.
func (s *Server) countTenantVerdict(tenant string, v Verdict) {
	tc := s.tenantC(tenant, true)
	if tc == nil {
		return
	}
	switch {
	case v.Code == VerdictAccept:
		tc.accepts.Add(1)
	case v.Code == VerdictReject:
		tc.rejects.Add(1)
	case v.Quota():
		tc.quota.Add(1)
	case v.Busy():
		tc.busy.Add(1)
	}
}

// chargeTenant accounts n symbol bytes to the tenant and, when a byte
// quota is configured, draws them from the tenant's token bucket. It
// reports false when the bucket is dry — the session gets the quota
// verdict. Anonymous sessions are never charged (identity is opt-in; the
// global caps still bound them).
func (s *Server) chargeTenant(tenant string, n int) bool {
	tc := s.tenantC(tenant, true)
	if tc == nil {
		return true
	}
	tc.bytes.Add(int64(n))
	rate := s.cfg.TenantBytesPerSec
	if rate <= 0 {
		return true
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	now := time.Now()
	burst := float64(s.cfg.TenantBurstBytes)
	if tc.last.IsZero() {
		tc.tokens = burst
	} else {
		tc.tokens += now.Sub(tc.last).Seconds() * float64(rate)
		if tc.tokens > burst {
			tc.tokens = burst
		}
	}
	tc.last = now
	if tc.tokens < float64(n) {
		return false
	}
	tc.tokens -= float64(n)
	return true
}

// Drain flips the server into draining mode: listeners stay open and
// in-flight, resuming, and replayed sessions still run to their
// verdicts, but fresh hellos are refused with the draining verdict
// (Verdict.Draining) so drain-aware clients redirect immediately. The
// checkpoint store keeps answering resume probes, so an upgrade is a
// mass planned failover through the existing token machinery.
func (s *Server) Drain() {
	if !s.drainMode.Swap(true) {
		s.drains.Add(1)
		s.logf("scserve: draining: refusing fresh hellos, still serving resumes")
		s.event("drain")
	}
}

// Undrain returns a draining server to normal admission.
func (s *Server) Undrain() {
	if s.drainMode.Swap(false) {
		s.logf("scserve: drain lifted")
		s.event("undrain")
	}
}

// Draining reports whether the server is in drain mode.
func (s *Server) Draining() bool { return s.drainMode.Load() }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	ckN, ckB := s.resume.snapshot()
	st := Stats{
		SessionsTotal:   s.sessionsTotal.Load(),
		SessionsActive:  s.sessionsActive.Load(),
		SessionsAborted: s.sessionsAborted.Load(),
		Accepts:         s.accepts.Load(),
		Rejects:         s.rejects.Load(),
		ProtocolErrors:  s.protoErrs.Load(),
		Busy:            s.busy.Load(),
		SymbolsTotal:    s.symbolsTotal.Load(),
		QueueBytes:      s.queueBytes.Load(),
		Checkpoints:     ckN,
		CheckpointBytes: ckB,
		Resumes:         s.resumes.Load(),
		ResumeReplays:   s.resumeReplays.Load(),
		ResumeMisses:    s.resumeMisses.Load(),
		TiersComputed:   s.tiersComputed.Load(),
		Draining:        s.drainMode.Load(),
		Drains:          s.drains.Load(),
		DrainRejects:    s.drainRejects.Load(),
		QuotaRejects:    s.quotaRejects.Load(),
		AdmitParked:     s.admitParked.Load(),

		ExploreSessions:    s.exploreSessions.Load(),
		ExploreStates:      s.exploreStates.Load(),
		ExploreTransitions: s.exploreTransitions.Load(),
		ExploreForwards:    s.exploreForwards.Load(),
		ExploreViolations:  s.exploreViolations.Load(),

		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if st.UptimeSeconds > 0 {
		st.SessionsPerSec = float64(st.SessionsTotal) / st.UptimeSeconds
		st.SymbolsPerSec = float64(st.SymbolsTotal) / st.UptimeSeconds
	}
	s.tenantMu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	tcs := make(map[string]*tenantCounters, len(names))
	for _, name := range names {
		tcs[name] = s.tenants[name]
	}
	s.tenantMu.Unlock()
	if len(tcs) > 0 {
		active := s.adm.snapshotActive()
		st.Tenants = make(map[string]TenantStats, len(tcs))
		for name, tc := range tcs {
			st.Tenants[name] = TenantStats{
				Sessions:     tc.sessions.Load(),
				Active:       int64(active[name]),
				Accepts:      tc.accepts.Load(),
				Rejects:      tc.rejects.Load(),
				Busy:         tc.busy.Load(),
				QuotaRejects: tc.quota.Load(),
				Bytes:        tc.bytes.Load(),
			}
		}
	}
	return st
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Serve accepts connections on ln until Shutdown. It returns
// ErrServerClosed after a graceful shutdown and the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown stops accepting connections and waits for every in-flight
// session to deliver its verdict. If ctx expires first, remaining
// connections are force-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// readFrame reads one frame with the configured deadline.
func (s *Server) readFrame(conn net.Conn, br *bufio.Reader) (byte, []byte, error) {
	if s.cfg.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}
	return readFrame(br, s.cfg.MaxFrame)
}

// armWrite refreshes the per-write deadline so a client that stops
// reading cannot park the handler forever.
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// writeVerdict emits a verdict frame without touching the verdict
// counters (used when replaying a stored verdict to a resumed client).
func (s *Server) writeVerdict(conn net.Conn, bw *bufio.Writer, v Verdict) error {
	s.armWrite(conn)
	if err := writeFrame(bw, frameVerdict, appendVerdict(nil, v)); err != nil {
		return err
	}
	return bw.Flush()
}

// sendVerdict counts and emits a fresh verdict.
func (s *Server) sendVerdict(conn net.Conn, bw *bufio.Writer, v Verdict) error {
	switch {
	case v.Code == VerdictAccept:
		s.accepts.Add(1)
	case v.Code == VerdictReject:
		s.rejects.Add(1)
	case v.Draining():
		s.drainRejects.Add(1)
		s.busy.Add(1)
		s.protoErrs.Add(1)
	case v.Quota():
		s.quotaRejects.Add(1)
		s.busy.Add(1)
		s.protoErrs.Add(1)
	case v.Busy():
		s.busy.Add(1)
		s.protoErrs.Add(1)
	default:
		s.protoErrs.Add(1)
	}
	return s.writeVerdict(conn, bw, v)
}

func (s *Server) sendStats(conn net.Conn, bw *bufio.Writer) error {
	payload, err := json.Marshal(s.Stats())
	if err != nil {
		return err
	}
	s.armWrite(conn)
	if err := writeFrame(bw, frameStatsReply, payload); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) sendAck(conn net.Conn, bw *bufio.Writer, sym int, off int64) error {
	s.armWrite(conn)
	if err := writeFrame(bw, frameAck, appendAck(nil, sym, off)); err != nil {
		return err
	}
	return bw.Flush()
}

// handleConn serves one connection: any number of sessions back to back,
// with stats frames allowed between (and inside) them.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 8<<10)

	for {
		if s.isClosed() {
			return
		}
		typ, payload, err := s.readFrame(conn, br)
		if err != nil {
			if err != io.EOF {
				s.logf("scserve: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch typ {
		case frameStatsReq:
			if err := s.sendStats(conn, bw); err != nil {
				return
			}
		case frameDrain:
			// Admin frame: flip drain mode and answer with a stats frame
			// (which carries the resulting Draining bit).
			mode, n := binary.Uvarint(payload)
			if n <= 0 || n != len(payload) || mode > 1 {
				s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
					Msg: "drain: malformed payload"})
				return
			}
			if mode == 1 {
				s.Drain()
			} else {
				s.Undrain()
			}
			if err := s.sendStats(conn, bw); err != nil {
				return
			}
		case frameHello:
			h, herr := parseHello(payload)
			switch {
			case herr != nil:
				s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: herr.Error()})
				return
			case h.K < 1 || h.K > s.cfg.MaxK:
				s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
					Msg: fmt.Sprintf("hello: k=%d outside 1..%d", h.K, s.cfg.MaxK)})
				return
			}
			if s.drainMode.Load() && !h.Resume {
				// Draining refuses new work but keeps honoring resume
				// probes: the checkpointed sessions it still holds must be
				// able to finish or replay their stored verdicts.
				s.event("drain_reject", "tenant", h.Tenant, "remote", conn.RemoteAddr().String())
				v := DrainingVerdict("backend draining; redirect or retry elsewhere")
				s.countTenantVerdict(h.Tenant, v)
				if err := s.sendVerdict(conn, bw, v); err != nil {
					return
				}
				if !s.drainSession(conn, br, bw) {
					return
				}
				continue
			}
			if res := s.adm.admit(h.Tenant); res != admitOK {
				// Clean busy/quota rejection: deliver the verdict, absorb
				// the session's frames, and keep the connection usable so
				// the client can back off and retry without redialing.
				var v Verdict
				if res == admitQuota {
					v = QuotaVerdict(fmt.Sprintf("tenant %q at session cap (%d)", h.Tenant, s.cfg.TenantSessions))
					s.event("quota_reject", "tenant", h.Tenant, "kind", "sessions")
				} else {
					v = BusyVerdict(fmt.Sprintf("server at session capacity (%d)", s.cfg.MaxSessions))
				}
				s.countTenantVerdict(h.Tenant, v)
				if err := s.sendVerdict(conn, bw, v); err != nil {
					return
				}
				if !s.drainSession(conn, br, bw) {
					return
				}
				continue
			}
			// From here the hello owns an admitted session slot; every
			// path that does not reach runSession or runExploreSession
			// (whose defers release it) must hand the slot back itself.
			if h.Explore != nil {
				if !s.runExploreSession(conn, br, bw, h) {
					return
				}
				continue
			}
			var seed *resumeSeed
			if h.Token != "" {
				if h.Resume {
					var rerr error
					seed, rerr = s.resume.take(h.Token, h, func() { conn.Close() })
					if rerr != nil {
						s.adm.release(h.Tenant)
						s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
							Msg: rerr.Error()})
						return
					}
					if seed == nil {
						s.adm.release(h.Tenant)
						s.resumeMisses.Add(1)
						s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
							Msg: resumeMissPrefix + "unknown or expired session token"})
						return
					}
				} else {
					// A fresh hello reusing a token restarts that session
					// from scratch; any prior checkpoint is discarded.
					s.resume.drop(h.Token)
				}
			}
			if !s.runSession(conn, br, bw, h, seed) {
				return
			}
		default:
			s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
				Msg: fmt.Sprintf("unexpected frame type %#x", typ)})
			return
		}
	}
}

// drainSession absorbs a rejected session's frames through its end frame
// (the verdict was already sent), keeping the connection in a known-good
// state for the next session. It reports whether the connection survives.
func (s *Server) drainSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) bool {
	for {
		typ, _, err := s.readFrame(conn, br)
		if err != nil {
			return false
		}
		switch typ {
		case frameSymbols:
			// discard
		case frameEnd:
			return !s.isClosed()
		case frameStatsReq:
			if err := s.sendStats(conn, bw); err != nil {
				return false
			}
		default:
			return false
		}
	}
}

// ackPos is a checkpointed position published by the checker goroutine
// for the conn loop to ack.
type ackPos struct {
	sym int
	off int64
}

// runSession drives one session to its verdict. It reports whether the
// connection is still in a known-good state for another session.
func (s *Server) runSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, h Header, seed *resumeSeed) bool {
	// The caller admitted the session (adm.admit); this defer releases
	// its slot back to the fair-share gate.
	id := s.sessionsTotal.Add(1)
	defer s.adm.release(h.Tenant)
	if tc := s.tenantC(h.Tenant, true); tc != nil {
		tc.sessions.Add(1)
	}
	s.event("session_open", "session", id, "tenant", h.Tenant, "remote", conn.RemoteAddr().String(),
		"token", h.Token != "", "resume", h.Resume)

	sent := false    // verdict already delivered (early rejection / replay)
	discard := false // checker gone; drop further symbol payloads
	lastAck := int64(-1)
	var prog atomic.Pointer[ackPos]
	var pipe *bpipe
	var resc chan Verdict

	deliver := func(v Verdict) error {
		s.countTenantVerdict(h.Tenant, v)
		s.event("verdict", "session", id, "tenant", h.Tenant, "code", v.Code.String(), "symbol", v.Symbol)
		return s.sendVerdict(conn, bw, v)
	}

	if seed != nil {
		// Confirm the resume position first: the client skips its buffer
		// to this offset and replays from there.
		s.resumes.Add(1)
		if err := s.sendAck(conn, bw, seed.sym, seed.off); err != nil {
			s.sessionsAborted.Add(1)
			return false
		}
		lastAck = seed.off
	}
	if seed != nil && seed.done != nil {
		// The session already ran to a verdict; the client evidently lost
		// it. The checker is deterministic, so the stored verdict IS the
		// verdict of the replayed stream — resend it and absorb the tail.
		s.resumeReplays.Add(1)
		if err := s.writeVerdict(conn, bw, *seed.done); err != nil {
			s.sessionsAborted.Add(1)
			return false
		}
		sent, discard = true, true
	} else {
		pipe = newBPipe(s.cfg.QueueBytes, &s.queueBytes)
		resc = make(chan Verdict, 1)
		go s.checkLoop(h, seed, pipe, resc, &prog, func() { conn.Close() })
	}

	abort := func() {
		if pipe != nil && !discard {
			pipe.CloseWrite(errClientGone)
			<-resc
		}
		s.sessionsAborted.Add(1)
		s.event("session_abort", "session", id, "tenant", h.Tenant)
	}

	for {
		typ, payload, err := s.readFrame(conn, br)
		if err != nil {
			// Client vanished mid-session: release the checker and drop its
			// verdict. Token sessions keep their newest checkpoint in the
			// resume store, so a reconnecting client picks up from there.
			abort()
			s.logf("scserve: %s: session aborted: %v", conn.RemoteAddr(), err)
			return false
		}
		switch typ {
		case frameSymbols:
			if discard {
				continue
			}
			if !s.chargeTenant(h.Tenant, len(payload)) {
				// The tenant's byte bucket ran dry mid-stream: stop the
				// checker and answer with the typed quota verdict. The
				// session's newest checkpoint (if any) survives, so the
				// client can resume once the bucket refills.
				pipe.CloseWrite(errClientGone)
				<-resc
				s.event("quota_reject", "session", id, "tenant", h.Tenant, "kind", "bytes")
				if err := deliver(QuotaVerdict(fmt.Sprintf("tenant %q over byte rate (%d B/s)",
					h.Tenant, s.cfg.TenantBytesPerSec))); err != nil {
					s.sessionsAborted.Add(1)
					return false
				}
				sent, discard = true, true
				continue
			}
			if _, werr := pipe.Write(payload); werr != nil {
				// The checker terminated early (rejection or undecodable
				// input). Deliver the verdict now; keep draining frames
				// until the client's end so the connection stays usable.
				v := <-resc
				s.resume.finish(h.Token, v, v.Symbol, v.Offset)
				if err := deliver(v); err != nil {
					s.sessionsAborted.Add(1)
					return false
				}
				sent, discard = true, true
			}
		case frameEnd:
			if pipe != nil && !discard {
				pipe.CloseWrite(nil)
			}
			if !sent {
				v := <-resc
				discard = true
				s.resume.finish(h.Token, v, v.Symbol, v.Offset)
				if err := deliver(v); err != nil {
					s.sessionsAborted.Add(1)
					return false
				}
			}
			return !s.isClosed()
		case frameStatsReq:
			if err := s.sendStats(conn, bw); err != nil {
				abort()
				return false
			}
		default:
			abort()
			s.sendVerdict(conn, bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
				Msg: fmt.Sprintf("unexpected frame type %#x inside session", typ)})
			return false
		}
		// Ack any checkpoint the checker published since the last frame.
		if h.Token != "" && !discard {
			if p := prog.Load(); p != nil && p.off > lastAck {
				if err := s.sendAck(conn, bw, p.sym, p.off); err != nil {
					abort()
					return false
				}
				lastAck = p.off
			}
		}
	}
}

// rejectVerdict builds a reject verdict, lifting the constraint code and
// cycle length out of the checker's structured rejection so clients get
// the witness classification without re-running the stream locally.
func rejectVerdict(symbol int, offset int64, prefix string, err error) Verdict {
	v := Verdict{Code: VerdictReject, Symbol: symbol, Offset: offset, Msg: prefix + err.Error()}
	var re *checker.RejectError
	if errors.As(err, &re) {
		v.Constraint = int(re.Constraint)
		v.CycleLen = re.CycleLen()
	}
	return v
}

// checkLoop is the session's dedicated checker goroutine: it decodes
// symbols from the bounded pipe, steps a checker — fresh, or a clone of
// the session's checkpoint when resuming — and delivers exactly one
// verdict on resc. On token sessions it clones the checker every
// AckInterval symbols into the resume store and publishes the position on
// prog for the conn loop to ack. Witness mode is on so rejections carry
// their constraint classification and cycle length back to the client.
func (s *Server) checkLoop(h Header, seed *resumeSeed, pipe *bpipe, resc chan<- Verdict, prog *atomic.Pointer[ackPos], kick func()) {
	var chk *checker.Checker
	var dec *descriptor.Decoder
	if seed != nil {
		chk = seed.chk
		dec = descriptor.NewDecoderAt(pipe, seed.off, seed.sym)
	} else {
		chk = checker.New(h.K).EnableWitness()
		if h.Params.Procs > 0 {
			chk.SetParams(h.Params)
		}
		if h.NoValues {
			chk.DisableValueCheck()
		}
		dec = descriptor.NewDecoder(pipe)
	}
	// Tier adjudication needs the decoded stream up to the rejection.
	// Resumed sessions lack the checkpointed prefix and NoValues sessions
	// run a checker whose rejections a value-aware replay would not
	// reproduce, so both stay untier-ed (missing tiers are always legal;
	// wrong tiers never are).
	collect := h.Tiered && !h.NoValues && seed == nil && s.cfg.TierLimit >= 0
	var stream descriptor.Stream
	attachTier := func(v Verdict) Verdict {
		if !collect {
			return v
		}
		w := witness.TierWitness(stream, h.K, h.Params)
		if w == nil {
			return v
		}
		res := w.Adjudicate(s.cfg.TierLimit)
		if !res.Checked {
			return v
		}
		v.Tiered = true
		v.Tier = int(res.Tier)
		v.ReorderStore, v.ReorderPast = -1, -1
		if res.Reorder != nil {
			v.ReorderStore, v.ReorderPast = res.Reorder.Store, res.Reorder.Past
		}
		s.tiersComputed.Add(1)
		return v
	}
	nextCkpt := dec.Count() + s.cfg.AckInterval
	for {
		off := dec.Offset()
		sym, err := dec.Next()
		if err == io.EOF {
			if ferr := chk.Finish(); ferr != nil {
				resc <- attachTier(rejectVerdict(dec.Count(), dec.Offset(), "end of stream: ", ferr))
			} else {
				resc <- Verdict{Code: VerdictAccept, Symbol: -1, Offset: -1,
					Msg: fmt.Sprintf("%d symbols describe an acyclic constraint graph", dec.Count())}
			}
			return
		}
		if err != nil {
			var de *descriptor.DecodeError
			if errors.As(err, &de) {
				resc <- Verdict{Code: VerdictProtocolError, Symbol: de.Symbol, Offset: de.Offset,
					Msg: "decode: " + de.Msg}
			} else {
				// Transport-level abort; the conn loop discards this.
				resc <- Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: err.Error()}
			}
			pipe.CloseRead(errSessionOver)
			return
		}
		s.symbolsTotal.Add(1)
		if collect {
			if len(stream) < s.cfg.TierMaxSymbols {
				stream = append(stream, sym)
			} else {
				collect, stream = false, nil
			}
		}
		if serr := chk.Step(sym); serr != nil {
			resc <- attachTier(rejectVerdict(dec.Count()-1, off, "", serr))
			pipe.CloseRead(errSessionOver)
			return
		}
		if h.Token != "" && dec.Count() >= nextCkpt {
			nextCkpt = dec.Count() + s.cfg.AckInterval
			if s.resume.put(h.Token, h, chk.Clone(), dec.Count(), dec.Offset(), kick) {
				prog.Store(&ackPos{sym: dec.Count(), off: dec.Offset()})
			}
		}
	}
}
