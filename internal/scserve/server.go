// Package scserve turns the per-run SC-checking pipeline into a long-lived
// concurrent network service: the online half of the testing deployment of
// Section 5 of Condon & Hu, where observers embedded in running systems
// emit descriptor streams and a central adjudicator accepts or rejects
// them. Clients open length-framed sessions over TCP (see frame.go for the
// protocol), stream descriptor wire bytes, and receive one structured
// verdict per session; each session runs a dedicated checker.Checker in
// its own goroutine behind a bounded byte queue, so a fast producer is
// throttled by TCP backpressure rather than buffered without bound.
package scserve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("scserve: server closed")

// errSessionOver unblocks a producer once its session has a verdict.
var errSessionOver = errors.New("scserve: session terminated")

// errClientGone aborts a checker whose client vanished mid-session.
var errClientGone = errors.New("scserve: client connection lost")

// Config tunes a Server. The zero value gets sane defaults from New.
type Config struct {
	// MaxSessions caps concurrently open sessions; further hellos receive
	// a protocol-error verdict. Default 256.
	MaxSessions int
	// MaxFrame caps a frame payload in bytes. Default 1 MiB.
	MaxFrame int
	// MaxK caps the bandwidth bound a session may request — the checker
	// allocates Θ(k²) state, so k is a resource the client must not
	// control unboundedly. Default 4096.
	MaxK int
	// QueueBytes bounds each session's symbol queue (frame reader to
	// checker goroutine). Default 64 KiB.
	QueueBytes int
	// ReadTimeout bounds each frame read; it doubles as the idle timeout
	// between sessions on a kept-alive connection. 0 disables.
	ReadTimeout time.Duration
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 20
	}
	if c.MaxK <= 0 {
		c.MaxK = 4096
	}
	if c.QueueBytes <= 0 {
		c.QueueBytes = 64 << 10
	}
	return c
}

// Stats is a snapshot of the server's counters, served to clients as JSON
// in stats frames.
type Stats struct {
	SessionsTotal   int64   `json:"sessions_total"`
	SessionsActive  int64   `json:"sessions_active"`
	SessionsAborted int64   `json:"sessions_aborted"`
	Accepts         int64   `json:"accepts"`
	Rejects         int64   `json:"rejects"`
	ProtocolErrors  int64   `json:"protocol_errors"`
	SymbolsTotal    int64   `json:"symbols_total"`
	QueueBytes      int64   `json:"queue_bytes"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	SessionsPerSec  float64 `json:"sessions_per_sec"`
	SymbolsPerSec   float64 `json:"symbols_per_sec"`
}

// String renders the operator-facing one-liner.
func (st Stats) String() string {
	return fmt.Sprintf("sessions %d (%d active, %d aborted), verdicts %d/%d/%d accept/reject/error, %d symbols, queue %dB, %.0f symbols/s",
		st.SessionsTotal, st.SessionsActive, st.SessionsAborted,
		st.Accepts, st.Rejects, st.ProtocolErrors, st.SymbolsTotal, st.QueueBytes, st.SymbolsPerSec)
}

// Server is the concurrent SC-checking service. Construct with New, start
// with Serve, stop with Shutdown.
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	lns      map[net.Listener]bool
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup // one per connection handler

	sessionsTotal   atomic.Int64
	sessionsActive  atomic.Int64
	sessionsAborted atomic.Int64
	accepts         atomic.Int64
	rejects         atomic.Int64
	protoErrs       atomic.Int64
	symbolsTotal    atomic.Int64
	queueBytes      atomic.Int64
}

// New returns a server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	return &Server{
		cfg:   cfg.withDefaults(),
		start: time.Now(),
		lns:   make(map[net.Listener]bool),
		conns: make(map[net.Conn]bool),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		SessionsTotal:   s.sessionsTotal.Load(),
		SessionsActive:  s.sessionsActive.Load(),
		SessionsAborted: s.sessionsAborted.Load(),
		Accepts:         s.accepts.Load(),
		Rejects:         s.rejects.Load(),
		ProtocolErrors:  s.protoErrs.Load(),
		SymbolsTotal:    s.symbolsTotal.Load(),
		QueueBytes:      s.queueBytes.Load(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
	}
	if st.UptimeSeconds > 0 {
		st.SessionsPerSec = float64(st.SessionsTotal) / st.UptimeSeconds
		st.SymbolsPerSec = float64(st.SymbolsTotal) / st.UptimeSeconds
	}
	return st
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Serve accepts connections on ln until Shutdown. It returns
// ErrServerClosed after a graceful shutdown and the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown stops accepting connections and waits for every in-flight
// session to deliver its verdict. If ctx expires first, remaining
// connections are force-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for ln := range s.lns {
		ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// readFrame reads one frame with the configured deadline.
func (s *Server) readFrame(conn net.Conn, br *bufio.Reader) (byte, []byte, error) {
	if s.cfg.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}
	return readFrame(br, s.cfg.MaxFrame)
}

func (s *Server) sendVerdict(bw *bufio.Writer, v Verdict) error {
	switch v.Code {
	case VerdictAccept:
		s.accepts.Add(1)
	case VerdictReject:
		s.rejects.Add(1)
	default:
		s.protoErrs.Add(1)
	}
	if err := writeFrame(bw, frameVerdict, appendVerdict(nil, v)); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) sendStats(bw *bufio.Writer) error {
	payload, err := json.Marshal(s.Stats())
	if err != nil {
		return err
	}
	if err := writeFrame(bw, frameStatsReply, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// handleConn serves one connection: any number of sessions back to back,
// with stats frames allowed between (and inside) them.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 8<<10)

	for {
		if s.isDraining() {
			return
		}
		typ, payload, err := s.readFrame(conn, br)
		if err != nil {
			if err != io.EOF {
				s.logf("scserve: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch typ {
		case frameStatsReq:
			if err := s.sendStats(bw); err != nil {
				return
			}
		case frameHello:
			h, herr := parseHello(payload)
			switch {
			case herr != nil:
				s.sendVerdict(bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: herr.Error()})
				return
			case h.K < 1 || h.K > s.cfg.MaxK:
				s.sendVerdict(bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
					Msg: fmt.Sprintf("hello: k=%d outside 1..%d", h.K, s.cfg.MaxK)})
				return
			case s.sessionsActive.Load() >= int64(s.cfg.MaxSessions):
				s.sendVerdict(bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
					Msg: fmt.Sprintf("server at session capacity (%d)", s.cfg.MaxSessions)})
				return
			}
			if !s.runSession(conn, br, bw, h) {
				return
			}
		default:
			s.sendVerdict(bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
				Msg: fmt.Sprintf("unexpected frame type %#x", typ)})
			return
		}
	}
}

// runSession drives one session to its verdict. It reports whether the
// connection is still in a known-good state for another session.
func (s *Server) runSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, h Header) bool {
	s.sessionsTotal.Add(1)
	s.sessionsActive.Add(1)
	defer s.sessionsActive.Add(-1)

	pipe := newBPipe(s.cfg.QueueBytes, &s.queueBytes)
	resc := make(chan Verdict, 1)
	go s.checkLoop(h, pipe, resc)

	sent := false    // verdict already delivered (early rejection)
	discard := false // checker gone; drop further symbol payloads
	for {
		typ, payload, err := s.readFrame(conn, br)
		if err != nil {
			// Client vanished mid-session: release the checker and drop
			// its verdict.
			pipe.CloseWrite(errClientGone)
			<-resc
			s.sessionsAborted.Add(1)
			s.logf("scserve: %s: session aborted: %v", conn.RemoteAddr(), err)
			return false
		}
		switch typ {
		case frameSymbols:
			if discard {
				continue
			}
			if _, werr := pipe.Write(payload); werr != nil {
				// The checker terminated early (rejection or undecodable
				// input). Deliver the verdict now; keep draining frames
				// until the client's end so the connection stays usable.
				if err := s.sendVerdict(bw, <-resc); err != nil {
					return false
				}
				sent, discard = true, true
			}
		case frameEnd:
			pipe.CloseWrite(nil)
			if !sent {
				if err := s.sendVerdict(bw, <-resc); err != nil {
					return false
				}
			}
			return !s.isDraining()
		case frameStatsReq:
			if err := s.sendStats(bw); err != nil {
				pipe.CloseWrite(errClientGone)
				<-resc
				s.sessionsAborted.Add(1)
				return false
			}
		default:
			pipe.CloseWrite(errClientGone)
			<-resc
			s.sendVerdict(bw, Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1,
				Msg: fmt.Sprintf("unexpected frame type %#x inside session", typ)})
			return false
		}
	}
}

// rejectVerdict builds a reject verdict, lifting the constraint code and
// cycle length out of the checker's structured rejection so clients get
// the witness classification without re-running the stream locally.
func rejectVerdict(symbol int, offset int64, prefix string, err error) Verdict {
	v := Verdict{Code: VerdictReject, Symbol: symbol, Offset: offset, Msg: prefix + err.Error()}
	var re *checker.RejectError
	if errors.As(err, &re) {
		v.Constraint = int(re.Constraint)
		v.CycleLen = re.CycleLen()
	}
	return v
}

// checkLoop is the session's dedicated checker goroutine: it decodes
// symbols from the bounded pipe, steps a fresh checker, and delivers
// exactly one verdict on resc. Witness mode is on so rejections carry
// their constraint classification and cycle length back to the client.
func (s *Server) checkLoop(h Header, pipe *bpipe, resc chan<- Verdict) {
	chk := checker.New(h.K).EnableWitness()
	if h.Params.Procs > 0 {
		chk.SetParams(h.Params)
	}
	if h.NoValues {
		chk.DisableValueCheck()
	}
	dec := descriptor.NewDecoder(pipe)
	for {
		off := dec.Offset()
		sym, err := dec.Next()
		if err == io.EOF {
			if ferr := chk.Finish(); ferr != nil {
				resc <- rejectVerdict(dec.Count(), dec.Offset(), "end of stream: ", ferr)
			} else {
				resc <- Verdict{Code: VerdictAccept, Symbol: -1, Offset: -1,
					Msg: fmt.Sprintf("%d symbols describe an acyclic constraint graph", dec.Count())}
			}
			return
		}
		if err != nil {
			var de *descriptor.DecodeError
			if errors.As(err, &de) {
				resc <- Verdict{Code: VerdictProtocolError, Symbol: de.Symbol, Offset: de.Offset,
					Msg: "decode: " + de.Msg}
			} else {
				// Transport-level abort; the conn loop discards this.
				resc <- Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: err.Error()}
			}
			pipe.CloseRead(errSessionOver)
			return
		}
		s.symbolsTotal.Add(1)
		if serr := chk.Step(sym); serr != nil {
			resc <- rejectVerdict(dec.Count()-1, off, "", serr)
			pipe.CloseRead(errSessionOver)
			return
		}
	}
}
