//go:build race

package scserve

// raceEnabled reports whether the race detector is compiled in, so timing-
// sensitive tests can widen their windows to compensate for its slowdown.
const raceEnabled = true
