package scserve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"scverify/internal/descriptor"
)

// maxChunk is the largest symbols-frame payload the client emits; the
// server's default MaxFrame is far above it.
const maxChunk = 32 << 10

// Client speaks the scserve session protocol over one connection. It is
// not goroutine-safe: a connection carries one session at a time (open
// several Clients for concurrency). The zero value is not usable;
// construct with Dial or NewClient.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
	open    *Session
}

// Dial connects to an scserve server.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout connects with a dial deadline; the same duration then bounds
// every subsequent read and write on the connection (0 disables).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("scserve: dial %s: %w", addr, err)
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an established connection (used by tests over in-memory
// pipes and by Dial).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 8<<10),
		bw:      bufio.NewWriterSize(conn, maxChunk+64),
		timeout: timeout,
	}
}

// Close closes the connection. An open session is abandoned (the server
// counts it as aborted).
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) deadlines() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// Stats fetches the server's counters. Not available while a session is
// open on this connection.
func (c *Client) Stats() (Stats, error) {
	if c.open != nil {
		return Stats{}, fmt.Errorf("scserve: stats request inside an open session")
	}
	c.deadlines()
	if err := writeFrame(c.bw, frameStatsReq, nil); err != nil {
		return Stats{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Stats{}, err
	}
	typ, payload, err := readFrame(c.br, 1<<20)
	if err != nil {
		return Stats{}, fmt.Errorf("scserve: stats read: %w", err)
	}
	if typ != frameStatsReply {
		return Stats{}, fmt.Errorf("scserve: stats request answered by frame type %#x", typ)
	}
	var st Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return Stats{}, fmt.Errorf("scserve: stats payload: %w", err)
	}
	return st, nil
}

// Session opens a checking session with the given header. Only one session
// may be open per Client; it must be concluded with Finish (or the
// connection closed) before the next.
func (c *Client) Session(h Header) (*Session, error) {
	if c.open != nil {
		return nil, fmt.Errorf("scserve: previous session still open")
	}
	c.deadlines()
	if err := writeFrame(c.bw, frameHello, appendHello(nil, h)); err != nil {
		return nil, fmt.Errorf("scserve: hello: %w", err)
	}
	s := &Session{c: c}
	c.open = s
	return s, nil
}

// Session is one open checking session: a sequence of Send/SendBytes calls
// concluded by Finish.
type Session struct {
	c       *Client
	symbols int
	bytes   int64
	scratch []byte
	done    bool
}

// Symbols returns the number of symbols sent so far via Send (SendBytes
// payloads are counted as raw bytes only).
func (s *Session) Symbols() int { return s.symbols }

// Bytes returns the number of stream bytes sent so far.
func (s *Session) Bytes() int64 { return s.bytes }

// Send encodes and streams the given symbols.
func (s *Session) Send(syms ...descriptor.Symbol) error {
	s.scratch = s.scratch[:0]
	for _, sym := range syms {
		s.scratch = descriptor.AppendBinary(s.scratch, sym)
	}
	if err := s.SendBytes(s.scratch); err != nil {
		return err
	}
	s.symbols += len(syms)
	return nil
}

// SendBytes streams raw descriptor wire bytes, split into frames of at
// most maxChunk. The bytes need not align with symbol boundaries.
func (s *Session) SendBytes(raw []byte) error {
	if s.done {
		return fmt.Errorf("scserve: send after Finish")
	}
	s.c.deadlines()
	for len(raw) > 0 {
		n := len(raw)
		if n > maxChunk {
			n = maxChunk
		}
		if err := writeFrame(s.c.bw, frameSymbols, raw[:n]); err != nil {
			return fmt.Errorf("scserve: send: %w", err)
		}
		s.bytes += int64(n)
		raw = raw[n:]
	}
	return nil
}

// Flush pushes buffered frames to the server immediately; Send and
// SendBytes otherwise buffer until the client-side writer fills or Finish
// is called.
func (s *Session) Flush() error {
	s.c.deadlines()
	return s.c.bw.Flush()
}

// Finish ends the stream and returns the server's verdict. The connection
// remains usable for further sessions.
func (s *Session) Finish() (Verdict, error) {
	if s.done {
		return Verdict{}, fmt.Errorf("scserve: session already finished")
	}
	s.done = true
	s.c.open = nil
	s.c.deadlines()
	if err := writeFrame(s.c.bw, frameEnd, nil); err != nil {
		return Verdict{}, fmt.Errorf("scserve: end: %w", err)
	}
	if err := s.c.bw.Flush(); err != nil {
		return Verdict{}, fmt.Errorf("scserve: flush: %w", err)
	}
	typ, payload, err := readFrame(s.c.br, 1<<20)
	if err != nil {
		return Verdict{}, fmt.Errorf("scserve: verdict read: %w", err)
	}
	if typ != frameVerdict {
		return Verdict{}, fmt.Errorf("scserve: expected verdict, got frame type %#x", typ)
	}
	v, err := parseVerdict(payload)
	if err != nil {
		return Verdict{}, fmt.Errorf("scserve: %w", err)
	}
	return v, nil
}

// Check is the one-shot convenience: it opens a session with h, streams
// the whole stream, and returns the verdict.
func (c *Client) Check(h Header, stream descriptor.Stream) (Verdict, error) {
	s, err := c.Session(h)
	if err != nil {
		return Verdict{}, err
	}
	if err := s.Send(stream...); err != nil {
		return Verdict{}, err
	}
	return s.Finish()
}
