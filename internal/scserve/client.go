package scserve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"scverify/internal/descriptor"
)

// maxChunk is the largest symbols-frame payload the client emits; the
// server's default MaxFrame is far above it.
const maxChunk = 32 << 10

// Client speaks the scserve session protocol over one connection. It is
// not goroutine-safe: a connection carries one session at a time (open
// several Clients for concurrency). The zero value is not usable;
// construct with Dial or NewClient.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
	open    *Session
}

// Dial connects to an scserve server.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout connects with a dial deadline; the same duration then bounds
// every subsequent read and write operation on the connection (0
// disables). The deadline is per operation, not per connection: a session
// may run arbitrarily long as long as each individual frame read or write
// makes progress within the timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("scserve: dial %s: %w", addr, err)
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an established connection (used by tests over in-memory
// pipes and by Dial).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 8<<10),
		bw:      bufio.NewWriterSize(conn, maxChunk+64),
		timeout: timeout,
	}
}

// Close closes the connection. An open session is abandoned (the server
// counts it as aborted).
func (c *Client) Close() error { return c.conn.Close() }

// armRead refreshes the read deadline before a blocking read. Deadlines
// are refreshed per operation — setting one whole-connection deadline
// would make long multi-frame sessions time out spuriously no matter how
// much progress they were making.
func (c *Client) armRead() {
	if c.timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
}

func (c *Client) armWrite() {
	if c.timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
}

// Stats fetches the server's counters. Not available while a session is
// open on this connection.
func (c *Client) Stats() (Stats, error) {
	if c.open != nil {
		return Stats{}, fmt.Errorf("scserve: stats request inside an open session")
	}
	c.armWrite()
	if err := writeFrame(c.bw, frameStatsReq, nil); err != nil {
		return Stats{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Stats{}, err
	}
	c.armRead()
	typ, payload, err := readFrame(c.br, 1<<20)
	if err != nil {
		return Stats{}, fmt.Errorf("scserve: stats read: %w", err)
	}
	if typ != frameStatsReply {
		return Stats{}, fmt.Errorf("scserve: stats request answered by frame type %#x", typ)
	}
	var st Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return Stats{}, fmt.Errorf("scserve: stats payload: %w", err)
	}
	return st, nil
}

// Drain sends the drain admin frame, flipping the server into draining
// mode (it refuses fresh hellos with the draining verdict but keeps
// serving in-flight and resuming sessions). The server answers with a
// stats snapshot whose Draining bit reflects the new mode.
func (c *Client) Drain() (Stats, error) { return c.drain(1) }

// Undrain lifts the server's drain mode.
func (c *Client) Undrain() (Stats, error) { return c.drain(0) }

func (c *Client) drain(mode uint64) (Stats, error) {
	if c.open != nil {
		return Stats{}, fmt.Errorf("scserve: drain request inside an open session")
	}
	c.armWrite()
	if err := writeFrame(c.bw, frameDrain, binary.AppendUvarint(nil, mode)); err != nil {
		return Stats{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Stats{}, err
	}
	c.armRead()
	typ, payload, err := readFrame(c.br, 1<<20)
	if err != nil {
		return Stats{}, fmt.Errorf("scserve: drain read: %w", err)
	}
	if typ != frameStatsReply {
		return Stats{}, fmt.Errorf("scserve: drain request answered by frame type %#x", typ)
	}
	var st Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return Stats{}, fmt.Errorf("scserve: drain stats payload: %w", err)
	}
	return st, nil
}

// Session opens a checking session with the given header. Only one session
// may be open per Client; it must be concluded with Finish (or the
// connection closed) before the next.
//
// If h.Resume is set, Session performs the resume handshake: it blocks for
// the server's answer, which is either an ack naming the checkpoint the
// session resumed from (see Acked — the caller replays its stream from
// that offset) or an immediate verdict (recorded and returned by Finish;
// e.g. an unknown token).
func (c *Client) Session(h Header) (*Session, error) {
	if c.open != nil {
		return nil, fmt.Errorf("scserve: previous session still open")
	}
	c.armWrite()
	if err := writeFrame(c.bw, frameHello, appendHello(nil, h)); err != nil {
		return nil, fmt.Errorf("scserve: hello: %w", err)
	}
	s := &Session{c: c, ackSym: -1, ackOff: -1}
	c.open = s
	if h.Resume {
		if err := c.resumeHandshake(s); err != nil {
			c.open = nil
			return nil, err
		}
	}
	return s, nil
}

// resumeHandshake blocks for the server's answer to a resume hello: an
// ack naming the checkpoint, or an immediate verdict.
func (c *Client) resumeHandshake(s *Session) error {
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("scserve: hello: %w", err)
	}
	c.armRead()
	typ, payload, err := readFrame(c.br, 1<<20)
	if err != nil {
		return fmt.Errorf("scserve: resume: %w", err)
	}
	if err := s.handleFrame(typ, payload); err != nil {
		return fmt.Errorf("scserve: resume: %w", err)
	}
	return nil
}

// Session is one open checking session: a sequence of Send/SendBytes calls
// concluded by Finish.
type Session struct {
	c       *Client
	symbols int
	bytes   int64
	scratch []byte
	done    bool

	ackSym int      // highest server-acked symbol index, -1 before any ack
	ackOff int64    // highest server-acked byte offset, -1 before any ack
	early  *Verdict // verdict received before Finish (early rejection, busy)
}

// Symbols returns the number of symbols sent so far via Send (SendBytes
// payloads are counted as raw bytes only).
func (s *Session) Symbols() int { return s.symbols }

// Bytes returns the number of stream bytes sent so far.
func (s *Session) Bytes() int64 { return s.bytes }

// Early returns the verdict the server delivered before Finish — an
// early rejection, a busy verdict, or a resume handshake answered by a
// stored verdict — and ok when one has arrived. Like Acked, it only
// advances as Poll, Finish, or the resume handshake read frames. Callers
// that see an early verdict should stop streaming and call Finish, which
// returns it.
func (s *Session) Early() (v Verdict, ok bool) {
	if s.early == nil {
		return Verdict{}, false
	}
	return *s.early, true
}

// Acked returns the highest checkpoint position the server has acked on
// this session: everything before byte offset off is durable server-side
// and need not be replayed after a reconnect. Before any ack it returns
// (-1, -1). Acks arrive only on sessions opened with a Header.Token, and
// only as Poll, Finish, or a resume handshake reads them.
func (s *Session) Acked() (sym int, off int64) { return s.ackSym, s.ackOff }

// handleFrame folds one server frame into the session's state.
func (s *Session) handleFrame(typ byte, payload []byte) error {
	switch typ {
	case frameAck:
		sym, off, err := parseAck(payload)
		if err != nil {
			return err
		}
		if off > s.ackOff {
			s.ackSym, s.ackOff = sym, off
		}
		return nil
	case frameVerdict:
		v, err := parseVerdict(payload)
		if err != nil {
			return err
		}
		s.early = &v
		return nil
	default:
		return fmt.Errorf("unexpected frame type %#x inside session", typ)
	}
}

// Send encodes and streams the given symbols.
func (s *Session) Send(syms ...descriptor.Symbol) error {
	s.scratch = s.scratch[:0]
	for _, sym := range syms {
		s.scratch = descriptor.AppendBinary(s.scratch, sym)
	}
	if err := s.SendBytes(s.scratch); err != nil {
		return err
	}
	s.symbols += len(syms)
	return nil
}

// SendBytes streams raw descriptor wire bytes, split into frames of at
// most maxChunk. The bytes need not align with symbol boundaries. An
// empty raw sends one empty symbols frame — a keepalive that gives the
// server a turn to emit pending progress acks (acks ride between frame
// reads on the server's connection loop).
func (s *Session) SendBytes(raw []byte) error {
	if s.done {
		return fmt.Errorf("scserve: send after Finish")
	}
	s.c.armWrite()
	if len(raw) == 0 {
		if err := writeFrame(s.c.bw, frameSymbols, nil); err != nil {
			return fmt.Errorf("scserve: send: %w", err)
		}
		return nil
	}
	for len(raw) > 0 {
		n := len(raw)
		if n > maxChunk {
			n = maxChunk
		}
		if err := writeFrame(s.c.bw, frameSymbols, raw[:n]); err != nil {
			return fmt.Errorf("scserve: send: %w", err)
		}
		s.bytes += int64(n)
		raw = raw[n:]
	}
	return nil
}

// Flush pushes buffered frames to the server immediately; Send and
// SendBytes otherwise buffer until the client-side writer fills or Finish
// is called.
func (s *Session) Flush() error {
	s.c.armWrite()
	return s.c.bw.Flush()
}

// tryParseFrame parses one complete frame from buffered bytes. ok is
// false when buf holds only a frame prefix (more bytes needed).
func tryParseFrame(buf []byte, maxPayload int) (typ byte, payload []byte, size int, ok bool, err error) {
	if len(buf) < 2 {
		return 0, nil, 0, false, nil
	}
	n, w := binary.Uvarint(buf[1:])
	if w == 0 {
		if len(buf) >= 1+binary.MaxVarintLen64 {
			return 0, nil, 0, false, fmt.Errorf("frame type %#x: malformed length varint", buf[0])
		}
		return 0, nil, 0, false, nil
	}
	if w < 0 || n > uint64(maxPayload) {
		return 0, nil, 0, false, fmt.Errorf("frame type %#x: payload %d bytes exceeds limit %d", buf[0], n, maxPayload)
	}
	total := 1 + w + int(n)
	if len(buf) < total {
		return 0, nil, 0, false, nil
	}
	return buf[0], buf[1+w : total], total, true, nil
}

// pollWindow is how long Poll waits for bytes the server has already
// sent to arrive. It bounds Poll's cost when nothing is pending.
const pollWindow = time.Millisecond

// Poll drains any server frames already delivered — progress acks and an
// early verdict, if one arrived — without blocking beyond a small grace
// window. It lets a long-running producer observe acks (see Acked) and
// notice an early rejection mid-stream. Frames the server has only
// partially delivered are left buffered for the next Poll or Finish.
func (s *Session) Poll() error {
	if s.done {
		return fmt.Errorf("scserve: poll after Finish")
	}
	for {
		// Parse complete frames out of what is already buffered.
		if n := s.c.br.Buffered(); n > 0 {
			buf, _ := s.c.br.Peek(n)
			typ, payload, size, ok, err := tryParseFrame(buf, 1<<20)
			if err != nil {
				return fmt.Errorf("scserve: poll: %w", err)
			}
			if ok {
				if err := s.handleFrame(typ, payload); err != nil {
					return fmt.Errorf("scserve: poll: %w", err)
				}
				s.c.br.Discard(size)
				continue
			}
		}
		// Only a frame prefix (or nothing) is buffered: attempt one short
		// bounded read for more. A deadline already in the past would fail
		// without attempting the read at all, so the window must be
		// positive; a timeout just means nothing more is pending.
		s.c.conn.SetReadDeadline(time.Now().Add(pollWindow))
		_, perr := s.c.br.Peek(s.c.br.Buffered() + 1)
		s.c.conn.SetReadDeadline(time.Time{})
		if perr != nil {
			if nerr, ok := perr.(net.Error); ok && nerr.Timeout() {
				return nil
			}
			if perr == bufio.ErrBufferFull {
				// A frame larger than the read buffer; leave it for the
				// next blocking read.
				return nil
			}
			return fmt.Errorf("scserve: poll: %w", perr)
		}
	}
}

// Finish ends the stream and returns the server's verdict. The connection
// remains usable for further sessions.
func (s *Session) Finish() (Verdict, error) {
	if s.done {
		return Verdict{}, fmt.Errorf("scserve: session already finished")
	}
	s.done = true
	s.c.open = nil
	s.c.armWrite()
	if err := writeFrame(s.c.bw, frameEnd, nil); err != nil {
		return Verdict{}, fmt.Errorf("scserve: end: %w", err)
	}
	if err := s.c.bw.Flush(); err != nil {
		return Verdict{}, fmt.Errorf("scserve: flush: %w", err)
	}
	for s.early == nil {
		s.c.armRead()
		typ, payload, err := readFrame(s.c.br, 1<<20)
		if err != nil {
			return Verdict{}, fmt.Errorf("scserve: verdict read: %w", err)
		}
		if err := s.handleFrame(typ, payload); err != nil {
			return Verdict{}, fmt.Errorf("scserve: %w", err)
		}
	}
	return *s.early, nil
}

// Check is the one-shot convenience: it opens a session with h, streams
// the whole stream, and returns the verdict.
func (c *Client) Check(h Header, stream descriptor.Stream) (Verdict, error) {
	s, err := c.Session(h)
	if err != nil {
		return Verdict{}, err
	}
	if err := s.Send(stream...); err != nil {
		return Verdict{}, err
	}
	return s.Finish()
}
