package scserve

import (
	"io"
	"sync"
	"sync/atomic"
)

// bpipe is a bounded in-memory byte pipe connecting a session's frame
// reader (producer) to its checker goroutine (consumer). Writes block once
// max bytes are buffered, so a client outrunning its checker is throttled
// through TCP flow control instead of ballooning server memory — the
// bounded per-session queue of the design.
type bpipe struct {
	mu   sync.Mutex
	cond sync.Cond
	buf  []byte // guarded by mu
	off  int    // guarded by mu; read position within buf
	max  int

	werr error // guarded by mu; write side closed; io.EOF means a clean close
	rerr error // guarded by mu; read side closed; writes fail with this error

	// depth, when non-nil, tracks the server-wide total of queued bytes.
	depth *atomic.Int64
}

func newBPipe(max int, depth *atomic.Int64) *bpipe {
	p := &bpipe{max: max, depth: depth}
	p.cond.L = &p.mu
	return p
}

func (p *bpipe) pendingLocked() int { return len(p.buf) - p.off }

// Write appends b, blocking while the pipe is full. It returns the read
// side's close error if the consumer is gone, and io.ErrClosedPipe after
// CloseWrite.
func (p *bpipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for len(b) > 0 {
		for p.rerr == nil && p.werr == nil && p.pendingLocked() >= p.max {
			p.cond.Wait()
		}
		if p.rerr != nil {
			return written, p.rerr
		}
		if p.werr != nil {
			return written, io.ErrClosedPipe
		}
		n := p.max - p.pendingLocked()
		if n > len(b) {
			n = len(b)
		}
		if p.off > 0 && p.off == len(p.buf) {
			p.buf = p.buf[:0]
			p.off = 0
		}
		p.buf = append(p.buf, b[:n]...)
		if p.depth != nil {
			p.depth.Add(int64(n))
		}
		b = b[n:]
		written += n
		p.cond.Broadcast()
	}
	return written, nil
}

// Read drains buffered bytes, blocking while the pipe is empty and the
// write side is open. After CloseWrite it drains the remainder and then
// returns the close error (io.EOF for a clean close).
func (p *bpipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pendingLocked() == 0 && p.werr == nil && p.rerr == nil {
		p.cond.Wait()
	}
	if p.rerr != nil {
		return 0, p.rerr
	}
	if p.pendingLocked() == 0 {
		return 0, p.werr
	}
	n := copy(b, p.buf[p.off:])
	p.off += n
	if p.depth != nil {
		p.depth.Add(int64(-n))
	}
	if p.off == len(p.buf) {
		p.buf = p.buf[:0]
		p.off = 0
	}
	p.cond.Broadcast()
	return n, nil
}

// CloseWrite ends the stream. A nil err closes cleanly: the reader drains
// the buffer and then sees io.EOF. A non-nil err is surfaced to the reader
// immediately after the drained bytes.
func (p *bpipe) CloseWrite(err error) {
	if err == nil {
		err = io.EOF
	}
	p.mu.Lock()
	if p.werr == nil {
		p.werr = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// CloseRead abandons the read side: buffered bytes are dropped and
// subsequent writes fail fast with err, unblocking a producer stuck on a
// full pipe (the early-rejection path).
func (p *bpipe) CloseRead(err error) {
	p.mu.Lock()
	if p.rerr == nil {
		p.rerr = err
		if p.depth != nil {
			p.depth.Add(int64(-p.pendingLocked()))
		}
		p.buf = nil
		p.off = 0
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
