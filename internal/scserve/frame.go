package scserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// The scserve session protocol is length-framed on top of the descriptor
// binary wire format. A frame is
//
//	[1-byte type] [uvarint payload length] [payload]
//
// and a session is
//
//	client: hello(version, k, p, b, v, flags)
//	client: symbols* (payloads concatenate into one descriptor byte stream;
//	        frames may split the stream anywhere, even mid-symbol)
//	client: end
//	server: one verdict frame per session — emitted early on rejection,
//	        otherwise in response to end
//
// A connection carries any number of sessions sequentially; stats frames
// may be sent between sessions (and are answered mid-session too). All
// uvarints are unsigned varints in encoding/binary's format.
const (
	frameHello      byte = 0x01 // open a session: header payload
	frameSymbols    byte = 0x02 // descriptor wire bytes
	frameEnd        byte = 0x03 // end of symbol stream; request final verdict
	frameStatsReq   byte = 0x04 // request a stats frame
	frameDrain      byte = 0x05 // admin: set drain mode (uvarint 1=drain, 0=undrain)
	frameExplore    byte = 0x06 // explore session: item batch, coordinator → backend
	frameVerdict    byte = 0x81 // server → client: session verdict
	frameStatsReply byte = 0x82 // server → client: JSON-encoded Stats
	frameAck        byte = 0x83 // server → client: checkpointed progress ack
	frameExploreFwd  byte = 0x84 // explore session: item batch, backend → coordinator
	frameExploreRep  byte = 0x85 // explore session: credit/progress report
	frameExploreViol byte = 0x86 // explore session: violation path + rejection message
)

// protocolVersion is the hello version this package speaks.
const protocolVersion = 1

// Hello flag bits are allocated in the central wire-flag registry
// (internal/descriptor/flags.go) and aliased here; the scvet wireflag
// analyzer rejects flag bits invented outside the registry, so the next
// wire-compatible extension cannot silently collide with one in flight.
//
// helloFlagNoValues asks the server to skip the value-equality side of
// constraint 4 (the Section 4.4 optimization); the client is expected to
// run its own valuecheck pass.
const helloFlagNoValues = descriptor.HelloFlagNoValues

// helloFlagToken marks a session the server should checkpoint for later
// resumption: the payload continues with a length-prefixed client-chosen
// token, and the server emits ack frames as checkpoints are taken. Hellos
// without the flag encode byte-identically to the pre-resume format.
const helloFlagToken = descriptor.HelloFlagToken

// helloFlagResume (requires helloFlagToken) asks the server to resume the
// token's checkpointed session instead of starting fresh: the payload
// continues with the client's last-acked symbol index and byte offset.
// The server answers with an ack naming the checkpoint it actually
// resumed from (always at or past the client's position), and the client
// replays its buffered tail from there.
const helloFlagResume = descriptor.HelloFlagResume

// helloFlagTiered opts the session into tiered verdicts: rejections are
// re-adjudicated against the weaker-model ladder and the verdict carries
// the tier extension (verdictFlagTier). The hello payload is otherwise
// unchanged, so non-tiered hellos encode byte-identically to before.
const helloFlagTiered = descriptor.HelloFlagTiered

// helloFlagTenant marks a hello carrying a tenant identity: the payload
// continues with a length-prefixed tenant ID after the token/resume
// fields. Tenant-free hellos encode byte-identically to the pre-tenant
// format; the tenant never participates in resume-header equality.
const helloFlagTenant = descriptor.HelloFlagTenant

// helloFlagExplore switches the session into distributed-exploration mode:
// the payload continues (after the tenant field, were one present) with
// the explore extension, and the session exchanges explore item frames
// instead of symbol frames. Mutually exclusive with NoValues, Token,
// Resume, and Tiered — an explore session has no symbol stream to
// checkpoint and builds its own product checker per state. Explore-free
// hellos encode byte-identically to the pre-explore format.
const helloFlagExplore = descriptor.HelloFlagExplore

// maxTokenLen bounds the resume token a client may choose.
const maxTokenLen = 64

// maxTenantLen bounds the tenant ID a client may claim.
const maxTenantLen = 64

// Header opens a session: the bandwidth bound the checker is built for,
// optional protocol parameters (zero Params disables the label range
// check), and NoValues to request a value-blind checker.
//
// A non-empty Token opts the session into checkpoint/resume: the server
// clones the checker at symbol boundaries, retains the newest clone under
// the token, and acks the checkpointed position. Resume reopens the
// token's session from AckSymbol/AckOffset (the position of the last ack
// the client received). Tokens are client-chosen; RetryClient draws 16
// random bytes.
type Header struct {
	K        int
	Params   trace.Params
	NoValues bool

	// Tiered opts the session into tiered verdicts: on rejection the
	// server re-adjudicates the witness core against the weaker-model
	// ladder and annotates the verdict with the strongest tier satisfied.
	Tiered bool

	Token     string
	Resume    bool
	AckSymbol int
	AckOffset int64

	// Tenant identifies who the session is accounted to for fair-share
	// admission, quotas, and per-tenant stats. Empty means the default
	// (unidentified) tenant; the field rides behind helloFlagTenant and
	// never participates in resume-header equality.
	Tenant string

	// Explore, when non-nil, switches the session into distributed
	// exploration: this backend becomes one shard of an scmc grid. The
	// extension rides behind helloFlagExplore after the tenant field.
	Explore *ExploreHeader
}

func appendHello(dst []byte, h Header) []byte {
	dst = binary.AppendUvarint(dst, protocolVersion)
	dst = binary.AppendUvarint(dst, uint64(h.K))
	dst = binary.AppendUvarint(dst, uint64(h.Params.Procs))
	dst = binary.AppendUvarint(dst, uint64(h.Params.Blocks))
	dst = binary.AppendUvarint(dst, uint64(h.Params.Values))
	var flags uint64
	if h.NoValues {
		flags |= helloFlagNoValues
	}
	if h.Tiered {
		flags |= helloFlagTiered
	}
	if h.Token != "" {
		flags |= helloFlagToken
		if h.Resume {
			flags |= helloFlagResume
		}
	}
	if h.Tenant != "" {
		flags |= helloFlagTenant
	}
	if h.Explore != nil {
		flags |= helloFlagExplore
	}
	dst = binary.AppendUvarint(dst, flags)
	if h.Token != "" {
		dst = binary.AppendUvarint(dst, uint64(len(h.Token)))
		dst = append(dst, h.Token...)
		if h.Resume {
			dst = binary.AppendUvarint(dst, uint64(h.AckSymbol))
			dst = binary.AppendUvarint(dst, uint64(h.AckOffset))
		}
	}
	if h.Tenant != "" {
		dst = binary.AppendUvarint(dst, uint64(len(h.Tenant)))
		dst = append(dst, h.Tenant...)
	}
	if h.Explore != nil {
		dst = appendExploreHeader(dst, h.Explore)
	}
	return dst
}

func parseHello(payload []byte) (Header, error) {
	var h Header
	fields := []struct {
		name string
		dst  *int
	}{
		{"version", nil},
		{"k", &h.K},
		{"p", &h.Params.Procs},
		{"b", &h.Params.Blocks},
		{"v", &h.Params.Values},
		{"flags", nil},
	}
	pos := 0
	var resume bool
	for i, f := range fields {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return Header{}, fmt.Errorf("hello: truncated %s field", f.name)
		}
		pos += n
		switch {
		case i == 0:
			if v != protocolVersion {
				return Header{}, fmt.Errorf("hello: protocol version %d, want %d", v, protocolVersion)
			}
		case f.dst != nil:
			if v > 1<<31 {
				return Header{}, fmt.Errorf("hello: %s field %d out of range", f.name, v)
			}
			*f.dst = int(v)
		default: // flags
			h.NoValues = v&helloFlagNoValues != 0
			h.Tiered = v&helloFlagTiered != 0
			resume = v&helloFlagResume != 0
			if resume && v&helloFlagToken == 0 {
				return Header{}, fmt.Errorf("hello: resume flag without a session token")
			}
			if v&helloFlagToken != 0 {
				tl, n := binary.Uvarint(payload[pos:])
				if n <= 0 {
					return Header{}, fmt.Errorf("hello: truncated token length")
				}
				pos += n
				if tl < 1 || tl > maxTokenLen {
					return Header{}, fmt.Errorf("hello: token length %d outside 1..%d", tl, maxTokenLen)
				}
				if uint64(len(payload)-pos) < tl {
					return Header{}, fmt.Errorf("hello: truncated token")
				}
				h.Token = string(payload[pos : pos+int(tl)])
				pos += int(tl)
			}
			if resume {
				h.Resume = true
				for _, rf := range []struct {
					name string
					max  uint64
					set  func(uint64)
				}{
					{"ack symbol", 1 << 40, func(v uint64) { h.AckSymbol = int(v) }},
					{"ack offset", 1 << 60, func(v uint64) { h.AckOffset = int64(v) }},
				} {
					v, n := binary.Uvarint(payload[pos:])
					if n <= 0 {
						return Header{}, fmt.Errorf("hello: truncated %s field", rf.name)
					}
					pos += n
					if v > rf.max {
						return Header{}, fmt.Errorf("hello: %s %d out of range", rf.name, v)
					}
					rf.set(v)
				}
			}
			if v&helloFlagTenant != 0 {
				tl, n := binary.Uvarint(payload[pos:])
				if n <= 0 {
					return Header{}, fmt.Errorf("hello: truncated tenant length")
				}
				pos += n
				if tl < 1 || tl > maxTenantLen {
					return Header{}, fmt.Errorf("hello: tenant length %d outside 1..%d", tl, maxTenantLen)
				}
				if uint64(len(payload)-pos) < tl {
					return Header{}, fmt.Errorf("hello: truncated tenant")
				}
				h.Tenant = string(payload[pos : pos+int(tl)])
				pos += int(tl)
			}
			if v&helloFlagExplore != 0 {
				if v&(helloFlagNoValues|helloFlagToken|helloFlagResume|helloFlagTiered) != 0 {
					return Header{}, fmt.Errorf("hello: explore flag combined with symbol-session flags %#x", v)
				}
				eh, n, err := parseExploreHeader(payload[pos:])
				if err != nil {
					return Header{}, err
				}
				pos += n
				h.Explore = eh
			}
			if v &^= helloFlagNoValues | helloFlagToken | helloFlagResume | helloFlagTiered | helloFlagTenant | helloFlagExplore; v != 0 {
				return Header{}, fmt.Errorf("hello: unknown flags %#x", v)
			}
		}
	}
	if pos != len(payload) {
		return Header{}, fmt.Errorf("hello: %d trailing bytes", len(payload)-pos)
	}
	return h, nil
}

// bare strips the session-management fields, leaving only the parts of a
// header that shape the checker — the equality a resume must preserve.
func (h Header) bare() Header {
	return Header{K: h.K, Params: h.Params, NoValues: h.NoValues}
}

// Ack frames carry the highest fully-checked position the server holds a
// checkpoint for: everything before (symbol, byte offset) is durable, and
// a client may discard its local copy of those bytes.
func appendAck(dst []byte, sym int, off int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(sym))
	return binary.AppendUvarint(dst, uint64(off))
}

func parseAck(payload []byte) (sym int, off int64, err error) {
	s, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, 0, fmt.Errorf("ack: truncated symbol field")
	}
	o, m := binary.Uvarint(payload[n:])
	if m <= 0 {
		return 0, 0, fmt.Errorf("ack: truncated offset field")
	}
	if s > 1<<40 || o > 1<<60 {
		return 0, 0, fmt.Errorf("ack: position out of range")
	}
	if n+m != len(payload) {
		return 0, 0, fmt.Errorf("ack: %d trailing bytes", len(payload)-n-m)
	}
	return int(s), int64(o), nil
}

// VerdictCode classifies a session outcome.
type VerdictCode uint8

const (
	// VerdictAccept: the stream describes an acyclic, well-annotated
	// constraint graph — the run is SC under the chosen annotation.
	VerdictAccept VerdictCode = iota
	// VerdictReject: the checker rejected; Symbol/Offset locate the
	// rejecting symbol (or the end of stream for Finish-time rejections).
	VerdictReject
	// VerdictProtocolError: the session itself was malformed — bad frame,
	// undecodable symbol bytes (positioned), bad hello, or server limits.
	VerdictProtocolError
)

// verdictFlagWitness is OR'd into the verdict code varint when the
// payload carries the witness extension: two extra uvarints (constraint
// code + 1, cycle length) between the offset field and the message. The
// bit sits above the code value space, so pre-extension payloads parse
// unchanged (Constraint = 0, CycleLen = 0) and pre-extension parsers
// reject extended payloads as an unknown code rather than misreading
// witness bytes as part of the message. Allocated in the descriptor
// wire-flag registry, like the hello bits.
const verdictFlagWitness = descriptor.VerdictFlagWitness

// verdictFlagTier is OR'd into the verdict code varint when the payload
// carries the tier extension: three extra uvarints (tier code, reorder
// store position + 1, reorder past position + 1) after the witness fields
// and before the message. Sent only on sessions that opted in via
// helloFlagTiered, so legacy sessions' payloads stay byte-identical.
const verdictFlagTier = descriptor.VerdictFlagTier

// maxTierCode bounds the tier codes a parser accepts. Codes above the
// tiers this build knows are tolerated (a newer peer may have grown the
// ladder) and render as "tier(N)"; the bound only rejects garbage.
const maxTierCode = 64

func (c VerdictCode) String() string {
	switch c {
	case VerdictAccept:
		return "accept"
	case VerdictReject:
		return "reject"
	case VerdictProtocolError:
		return "protocol-error"
	default:
		return fmt.Sprintf("VerdictCode(%d)", uint8(c))
	}
}

// Verdict is the server's adjudication of one session. Symbol is the
// zero-based index of the offending symbol in the session's stream and
// Offset the byte offset of its first byte; both are -1 when not
// applicable (accepts, pre-stream protocol errors).
type Verdict struct {
	Code   VerdictCode
	Symbol int
	Offset int64
	// Constraint is the checker.Constraint code of a rejection (the
	// witness extension), 0 when unclassified or from a pre-extension
	// peer. CycleLen is the number of operations on the offending cycle
	// when Constraint is the acyclicity requirement, 0 otherwise.
	Constraint int
	CycleLen   int
	// Tiered marks a verdict carrying the tier extension: Tier is the
	// spectrum.Tier code of the strongest weaker model the rejected core
	// satisfies (possibly unknown to this build when the peer is newer),
	// and ReorderStore/ReorderPast are the trace positions, within the
	// minimized core, of the store-buffer reordering licensing a TSO/PSO
	// tier (-1 when not applicable).
	Tiered       bool
	Tier         int
	ReorderStore int
	ReorderPast  int
	Msg          string
}

// String renders the verdict on one line.
func (v Verdict) String() string {
	s := v.Code.String()
	if v.Symbol >= 0 {
		s += fmt.Sprintf(" at symbol %d (byte %d)", v.Symbol, v.Offset)
	}
	if v.Constraint > 0 {
		s += fmt.Sprintf(" [%s", checker.Constraint(v.Constraint))
		if v.CycleLen > 0 {
			s += fmt.Sprintf(", cycle of %d", v.CycleLen)
		}
		s += "]"
	}
	if v.Tiered {
		s += fmt.Sprintf(" [tier: %s", spectrum.Tier(v.Tier))
		if v.ReorderStore >= 0 && v.ReorderPast >= 0 {
			s += fmt.Sprintf(", store op %d drained after op %d", v.ReorderStore, v.ReorderPast)
		}
		s += "]"
	}
	return s + ": " + v.Msg
}

// busyPrefix marks the server's clean capacity rejection; see Busy.
const busyPrefix = "busy: "

// drainingPrefix marks the busy-family verdict a draining backend
// answers fresh hellos with; see Draining. Nesting inside busyPrefix is
// deliberate: a peer that predates draining sees an ordinary busy and
// backs off — safe, just slower than a redirect.
const drainingPrefix = busyPrefix + "draining: "

// quotaPrefix marks the busy-family verdict a tenant over its session or
// byte quota receives; see Quota. Nested inside busyPrefix for the same
// forward-compatibility reason as drainingPrefix.
const quotaPrefix = busyPrefix + "quota: "

// resumeMissPrefix marks the server's answer to a resume whose token is
// unknown or expired; see ResumeMiss.
const resumeMissPrefix = "resume: "

// Busy reports whether the verdict is the server's session-capacity
// rejection — a clean, retryable condition (the connection stays usable;
// back off and reopen the session) as opposed to a genuine protocol
// error.
func (v Verdict) Busy() bool {
	return v.Code == VerdictProtocolError && strings.HasPrefix(v.Msg, busyPrefix)
}

// BusyVerdict builds the clean capacity-rejection verdict (Verdict.Busy
// reports true for it). The server uses it when at session capacity; the
// scgrid admission layer sheds over-deadline sessions with the same
// verdict so clients see one retryable vocabulary either way.
func BusyVerdict(msg string) Verdict {
	return Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: busyPrefix + msg}
}

// Draining reports whether the verdict is a draining backend declining a
// fresh hello. Draining implies Busy (the message nests the prefixes), so
// a drain-unaware client degrades to ordinary backoff; a drain-aware
// client treats it as redirect-not-failure — re-place immediately on
// another backend, no backoff, no retry attempt consumed.
func (v Verdict) Draining() bool {
	return v.Code == VerdictProtocolError && strings.HasPrefix(v.Msg, drainingPrefix)
}

// DrainingVerdict builds the verdict a draining backend answers fresh
// hellos with (Draining and Busy both report true for it). In-flight and
// resuming sessions are unaffected: drain refuses new work while the
// token/checkpoint machinery hands the old work off.
func DrainingVerdict(msg string) Verdict {
	return Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: drainingPrefix + msg}
}

// Quota reports whether the verdict is a per-tenant quota rejection —
// the tenant is over its concurrent-session or byte budget. Quota implies
// Busy, so legacy clients back off; the overload is the tenant's own, and
// redirecting to another backend would not help.
func (v Verdict) Quota() bool {
	return v.Code == VerdictProtocolError && strings.HasPrefix(v.Msg, quotaPrefix)
}

// QuotaVerdict builds the per-tenant quota rejection (Quota and Busy both
// report true for it).
func QuotaVerdict(msg string) Verdict {
	return Verdict{Code: VerdictProtocolError, Symbol: -1, Offset: -1, Msg: quotaPrefix + msg}
}

// ResumeMiss reports whether the verdict is the server declining a resume
// because the token is unknown, expired, or evicted. Unlike other
// protocol errors this one is recoverable without operator attention: the
// client still holds the full stream (or can regenerate it), so the right
// response is a fresh session replaying from byte zero — which is exactly
// what the scgrid fabric does when a backend restarts and loses its
// checkpoint store.
func (v Verdict) ResumeMiss() bool {
	return v.Code == VerdictProtocolError && strings.HasPrefix(v.Msg, resumeMissPrefix)
}

// VerdictError wraps a non-accept verdict as an error, so callers
// adjudicating through the service can distinguish a delivered verdict
// (errors.As) from a transport failure that produced no verdict at all.
type VerdictError struct {
	Verdict Verdict
}

func (e *VerdictError) Error() string { return "scserve: " + e.Verdict.String() }

// Err returns nil for an accept and a *VerdictError describing the
// verdict otherwise, for callers adjudicating runs through the service.
func (v Verdict) Err() error {
	if v.Code == VerdictAccept {
		return nil
	}
	return &VerdictError{Verdict: v}
}

// Verdict payloads encode Symbol and Offset shifted by one so that 0
// means "not applicable" (-1) and varints stay unsigned. Witness fields
// (Constraint, CycleLen) ride behind the verdictFlagWitness bit; a
// verdict without them is encoded exactly as before the extension.
func appendVerdict(dst []byte, v Verdict) []byte {
	code := uint64(v.Code)
	witness := v.Constraint > 0 || v.CycleLen > 0
	if witness {
		code |= verdictFlagWitness
	}
	if v.Tiered {
		code |= verdictFlagTier
	}
	dst = binary.AppendUvarint(dst, code)
	dst = binary.AppendUvarint(dst, uint64(v.Symbol+1))
	dst = binary.AppendUvarint(dst, uint64(v.Offset+1))
	if witness {
		dst = binary.AppendUvarint(dst, uint64(v.Constraint+1))
		dst = binary.AppendUvarint(dst, uint64(v.CycleLen))
	}
	if v.Tiered {
		dst = binary.AppendUvarint(dst, uint64(v.Tier))
		dst = binary.AppendUvarint(dst, uint64(v.ReorderStore+1))
		dst = binary.AppendUvarint(dst, uint64(v.ReorderPast+1))
	}
	return append(dst, v.Msg...)
}

func parseVerdict(payload []byte) (Verdict, error) {
	var v Verdict
	pos := 0
	uv := func(name string) (uint64, error) {
		x, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("verdict: truncated %s field", name)
		}
		pos += n
		return x, nil
	}
	code, err := uv("code")
	if err != nil {
		return Verdict{}, err
	}
	witness := code&verdictFlagWitness != 0
	tiered := code&verdictFlagTier != 0
	code &^= verdictFlagWitness | verdictFlagTier
	if code > uint64(VerdictProtocolError) {
		return Verdict{}, fmt.Errorf("verdict: unknown code %d", code)
	}
	v.Code = VerdictCode(code)
	sym, err := uv("symbol")
	if err != nil {
		return Verdict{}, err
	}
	off, err := uv("offset")
	if err != nil {
		return Verdict{}, err
	}
	if sym > 1<<40 || off > 1<<60 {
		return Verdict{}, fmt.Errorf("verdict: position out of range")
	}
	v.Symbol = int(sym) - 1
	v.Offset = int64(off) - 1
	if witness {
		con, err := uv("constraint")
		if err != nil {
			return Verdict{}, err
		}
		cl, err := uv("cyclelen")
		if err != nil {
			return Verdict{}, err
		}
		if con < 1 || !checker.ValidConstraintCode(int(con-1)) {
			return Verdict{}, fmt.Errorf("verdict: unknown constraint code %d", con)
		}
		if cl > 1<<32 {
			return Verdict{}, fmt.Errorf("verdict: cycle length out of range")
		}
		v.Constraint = int(con) - 1
		v.CycleLen = int(cl)
		if v.Constraint == 0 && v.CycleLen == 0 {
			return Verdict{}, fmt.Errorf("verdict: empty witness extension")
		}
	}
	if tiered {
		tier, err := uv("tier")
		if err != nil {
			return Verdict{}, err
		}
		if tier >= maxTierCode {
			return Verdict{}, fmt.Errorf("verdict: tier code %d out of range", tier)
		}
		rstore, err := uv("reorder store")
		if err != nil {
			return Verdict{}, err
		}
		rpast, err := uv("reorder past")
		if err != nil {
			return Verdict{}, err
		}
		if rstore > 1<<40 || rpast > 1<<40 {
			return Verdict{}, fmt.Errorf("verdict: reorder position out of range")
		}
		v.Tiered = true
		v.Tier = int(tier)
		v.ReorderStore = int(rstore) - 1
		v.ReorderPast = int(rpast) - 1
	}
	v.Msg = string(payload[pos:])
	return v, nil
}

// writeFrame writes one frame. The caller flushes.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing maxPayload. A clean EOF before the
// type byte is io.EOF; an EOF anywhere inside the frame is
// io.ErrUnexpectedEOF.
func readFrame(br *bufio.Reader, maxPayload int) (byte, []byte, error) {
	typ, err := br.ReadByte()
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if size > uint64(maxPayload) {
		return 0, nil, fmt.Errorf("frame type %#x: payload %d bytes exceeds limit %d", typ, size, maxPayload)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}
