package scserve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSessionCapHardUnderConcurrentHellos is the regression test for the
// admission race scvet's guarded/atomic audit surfaced: admission used to
// compare sessionsActive.Load() against MaxSessions in handleConn while
// the matching Add(1) happened later in runSession, so N hellos racing
// through the window together were all admitted — the cap was a
// suggestion exactly when it mattered. Admission now claims the slot
// with a CAS (reserveSession) at the comparison point.
//
// The test storms the server with simultaneous hellos while no slot is
// ever released (admitted sessions are held open until measured), so the
// number of admitted sessions must be exactly MaxSessions, and the
// active gauge must never exceed the cap at any sampled instant. Run
// with -race this also exercises the handler-side session table.
func TestSessionCapHardUnderConcurrentHellos(t *testing.T) {
	const maxSessions = 3
	const clients = 24
	srv, addr := startServer(t, Config{MaxSessions: maxSessions})

	// Watermark sampler: the gauge must never be observed above the cap.
	var maxSeen int64
	stopSample := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			if n := srv.sessionsActive.Load(); n > maxSeen {
				maxSeen = n
			}
			runtime.Gosched()
		}
	}()

	var admitted, busyCount atomic.Int64
	errs := make(chan error, clients)
	start := make(chan struct{})
	measured := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := DialTimeout(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			<-start
			s, err := cli.Session(SyntheticHeader())
			if err != nil {
				errs <- err
				return
			}
			if err := s.Flush(); err != nil {
				errs <- err
				return
			}
			// Give the hello time to be admitted or busied, then look.
			time.Sleep(100 * time.Millisecond)
			if err := s.Poll(); err != nil {
				errs <- err
				return
			}
			if v, ok := s.Early(); ok {
				if !v.Busy() {
					errs <- fmt.Errorf("unexpected early verdict: %s", v)
					return
				}
				busyCount.Add(1)
				return
			}
			admitted.Add(1)
			<-measured // hold the slot until the storm is measured
			if v, err := s.Finish(); err != nil {
				errs <- err
			} else if v.Code != VerdictAccept {
				errs <- fmt.Errorf("empty session verdict: %s", v)
			}
		}()
	}
	close(start)

	deadline := time.Now().Add(10 * time.Second)
	for admitted.Load()+busyCount.Load() < clients {
		if time.Now().After(deadline) {
			close(measured)
			t.Fatalf("storm did not settle: %d admitted, %d busy of %d",
				admitted.Load(), busyCount.Load(), clients)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := admitted.Load(); n != maxSessions {
		t.Errorf("admitted %d sessions with no slot ever released; cap is %d", n, maxSessions)
	}
	if n := srv.sessionsActive.Load(); n > maxSessions {
		t.Errorf("sessionsActive %d exceeds cap %d", n, maxSessions)
	}
	close(measured)
	wg.Wait()
	close(stopSample)
	<-samplerDone
	if maxSeen > maxSessions {
		t.Errorf("sessionsActive watermark %d exceeded cap %d during the storm", maxSeen, maxSessions)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
