package scserve

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"scverify/internal/descriptor"
)

// TestHelloWireCompat pins the hello encoding: legacy headers (no token)
// must encode byte-identically to the pre-resume format, and the new
// token/resume fields must round-trip.
func TestHelloWireCompat(t *testing.T) {
	legacy := SyntheticHeader()
	// The pre-resume encoding: version, k, p, b, v, flags — all uvarints.
	want := []byte{1, SyntheticK, 1, 1, 2, 0}
	if got := appendHello(nil, legacy); !bytes.Equal(got, want) {
		t.Fatalf("legacy hello encodes as %v, want %v", got, want)
	}

	cases := []Header{
		legacy,
		{K: 5, NoValues: true},
		{K: 5, Token: "tok"},
		{K: 5, Token: "tok", Resume: true},
		{K: 5, Token: "tok", Resume: true, AckSymbol: 1000, AckOffset: 123456},
		{K: 5, NoValues: true, Token: string(bytes.Repeat([]byte{'x'}, maxTokenLen)), Resume: true, AckSymbol: 1, AckOffset: 1},
	}
	for _, h := range cases {
		back, err := parseHello(appendHello(nil, h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if back != h {
			t.Fatalf("round trip: got %+v, want %+v", back, h)
		}
	}

	// Resume positions are dropped (not encoded) without the resume flag.
	h := Header{K: 5, Token: "tok", AckSymbol: 9, AckOffset: 9}
	back, err := parseHello(appendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if back.AckSymbol != 0 || back.AckOffset != 0 {
		t.Fatalf("non-resume hello carried ack position: %+v", back)
	}

	bad := [][]byte{
		appendHello(nil, Header{K: 5, Token: string(bytes.Repeat([]byte{'x'}, maxTokenLen+1))}),
		{1, 5, 0, 0, 0, helloFlagResume},               // resume without token
		{1, 5, 0, 0, 0, helloFlagToken},                // flag without token bytes
		{1, 5, 0, 0, 0, helloFlagToken, 3, 'a'},        // truncated token
		{1, 5, 0, 0, 0, helloFlagToken, 0},             // empty token
		append(appendHello(nil, Header{K: 5}), 0),      // trailing byte
		{1, 5, 0, 0, 0, helloFlagToken | helloFlagResume, 1, 'a', 7}, // missing ack offset
	}
	for i, payload := range bad {
		if _, err := parseHello(payload); err == nil {
			t.Errorf("bad hello %d parsed without error", i)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, c := range []struct {
		sym int
		off int64
	}{{0, 0}, {1, 1}, {1024, 4096}, {1 << 30, 1 << 40}} {
		sym, off, err := parseAck(appendAck(nil, c.sym, c.off))
		if err != nil {
			t.Fatal(err)
		}
		if sym != c.sym || off != c.off {
			t.Fatalf("got (%d, %d), want (%d, %d)", sym, off, c.sym, c.off)
		}
	}
	for i, payload := range [][]byte{{}, {5}, append(appendAck(nil, 1, 2), 0)} {
		if _, _, err := parseAck(payload); err == nil {
			t.Errorf("bad ack %d parsed without error", i)
		}
	}
}

// tokenHeader is SyntheticHeader with a resume token.
func tokenHeader(token string) Header {
	h := SyntheticHeader()
	h.Token = token
	return h
}

// waitForAck nudges the server with empty symbol frames until the session
// observes its first ack. Acks ride between frame reads on the server's
// conn loop, so a client that stops sending stops receiving them — an
// empty symbols frame is the protocol's keepalive.
func waitForAck(t *testing.T, sess *Session) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sess.SendBytes(nil); err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := sess.Poll(); err != nil {
			t.Fatal(err)
		}
		if _, off := sess.Acked(); off > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no ack within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointResume exercises the full resume path: stream half a
// session, kill the connection, resume with a second one, and check that
// the verdict is correct with stream-absolute positions and that only the
// unacked tail needed replaying.
func TestCheckpointResume(t *testing.T) {
	srv, addr := startServer(t, Config{AckInterval: 8})
	stream, rejectIdx := SyntheticReject(100)
	wire := descriptor.Marshal(stream)
	first := wire[:offsetOf(stream, 50)]

	c1 := dialT(t, addr)
	sess, err := c1.Session(tokenHeader("resume-test"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendBytes(first); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForAck(t, sess)
	ackSym, ackOff := sess.Acked()
	c1.Close() // drop mid-session: the server aborts, the checkpoint stays

	c2 := dialT(t, addr)
	h := tokenHeader("resume-test")
	h.Resume, h.AckSymbol, h.AckOffset = true, ackSym, ackOff
	sess2, err := c2.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	rsym, roff := sess2.Acked()
	if roff < ackOff {
		t.Fatalf("resume ack (%d, %d) behind client position (%d, %d)", rsym, roff, ackSym, ackOff)
	}
	if roff <= 0 || roff >= int64(len(wire)) {
		t.Fatalf("resume offset %d outside the stream (0, %d)", roff, len(wire))
	}
	// Replay only from the server's checkpoint.
	if err := sess2.SendBytes(wire[roff:]); err != nil {
		t.Fatal(err)
	}
	v, err := sess2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != VerdictReject || v.Symbol != rejectIdx || v.Offset != offsetOf(stream, rejectIdx) {
		t.Fatalf("resumed verdict %v, want reject at symbol %d byte %d", v, rejectIdx, offsetOf(stream, rejectIdx))
	}
	st := srv.Stats()
	if st.Resumes != 1 {
		t.Fatalf("server resumes = %d, want 1", st.Resumes)
	}
	if st.SessionsAborted != 1 {
		t.Fatalf("server aborts = %d, want 1", st.SessionsAborted)
	}
}

// TestResumeUnknownToken: resuming a token the server has never seen (or
// has evicted) degrades to a clean protocol-error verdict.
func TestResumeUnknownToken(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dialT(t, addr)
	h := tokenHeader("never-seen")
	h.Resume, h.AckSymbol, h.AckOffset = true, 10, 100
	sess, err := c.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	if sess.early == nil || sess.early.Code != VerdictProtocolError {
		t.Fatalf("early verdict = %v, want protocol error", sess.early)
	}
	if srv.Stats().ResumeMisses != 1 {
		t.Fatalf("resume misses = %d, want 1", srv.Stats().ResumeMisses)
	}
}

// TestResumeHeaderMismatch: a resume whose header disagrees with the
// checkpointed session (different k) is rejected cleanly.
func TestResumeHeaderMismatch(t *testing.T) {
	_, addr := startServer(t, Config{AckInterval: 4})
	stream := SyntheticAccept(40)
	wire := descriptor.Marshal(stream)

	c1 := dialT(t, addr)
	sess, err := c1.Session(tokenHeader("mismatch"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendBytes(wire[:len(wire)/2]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForAck(t, sess)
	c1.Close()

	c2 := dialT(t, addr)
	h := tokenHeader("mismatch")
	h.K++ // different checker shape
	h.Resume = true
	sess2, err := c2.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.early == nil || sess2.early.Code != VerdictProtocolError {
		t.Fatalf("early verdict = %v, want protocol error", sess2.early)
	}
}

// TestResumeVerdictReplay: a session that completed at the server but
// whose client missed the verdict gets the stored verdict replayed on
// resume, without re-checking.
func TestResumeVerdictReplay(t *testing.T) {
	srv, addr := startServer(t, Config{AckInterval: 8})
	stream := SyntheticAccept(64)
	wire := descriptor.Marshal(stream)

	c1 := dialT(t, addr)
	v1, err := c1.Check(tokenHeader("replay"), stream)
	if err != nil || v1.Code != VerdictAccept {
		t.Fatalf("first pass: %v, %v", v1, err)
	}

	// Pretend the verdict was lost: resume the completed session. The
	// handshake ack names the server's final checkpoint; the client
	// replays from there (possibly nothing) and gets the stored verdict.
	c2 := dialT(t, addr)
	h := tokenHeader("replay")
	h.Resume = true
	sess2, err := c2.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	_, roff := sess2.Acked()
	if roff < 0 || roff > int64(len(wire)) {
		t.Fatalf("replay handshake ack offset %d outside [0, %d]", roff, len(wire))
	}
	if err := sess2.SendBytes(wire[roff:]); err != nil {
		t.Fatal(err)
	}
	v2, err := sess2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Fatalf("replayed verdict %v differs from original %v", v2, v1)
	}
	if srv.Stats().ResumeReplays != 1 {
		t.Fatalf("resume replays = %d, want 1", srv.Stats().ResumeReplays)
	}
}

// TestResumeEviction: the checkpoint store's entry cap evicts the least
// recently touched token, which then resumes as unknown.
func TestResumeEviction(t *testing.T) {
	_, addr := startServer(t, Config{AckInterval: 4, ResumeMaxSessions: 1})
	stream := SyntheticAccept(40)
	wire := descriptor.Marshal(stream)

	open := func(token string) {
		c := dialT(t, addr)
		sess, err := c.Session(tokenHeader(token))
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SendBytes(wire[:len(wire)/2]); err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
		waitForAck(t, sess)
		c.Close()
	}
	open("first")
	open("second") // evicts "first"

	c := dialT(t, addr)
	h := tokenHeader("first")
	h.Resume = true
	sess, err := c.Session(h)
	if err != nil {
		t.Fatal(err)
	}
	if sess.early == nil || sess.early.Code != VerdictProtocolError {
		t.Fatalf("evicted token resumed: %v", sess.early)
	}
}

// TestBusyKeepsConnection: a session rejected for capacity gets a clean
// busy verdict and the connection stays usable for a later session.
func TestBusyKeepsConnection(t *testing.T) {
	srv, addr := startServer(t, Config{MaxSessions: 1, AckInterval: 8})

	// Occupy the only slot with an unfinished session.
	c1 := dialT(t, addr)
	s1, err := c1.Session(SyntheticHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(SyntheticAccept(20)...); err != nil {
		t.Fatal(err)
	}
	if err := s1.Flush(); err != nil {
		t.Fatal(err)
	}
	waitActive(t, srv, 1)

	c2 := dialT(t, addr)
	v, err := c2.Check(SyntheticHeader(), SyntheticAccept(10))
	if err != nil {
		t.Fatalf("busy session errored at transport level: %v", err)
	}
	if !v.Busy() {
		t.Fatalf("verdict %v, want busy", v)
	}

	// Free the slot; the SAME rejected connection must now work.
	if v, err := s1.Finish(); err != nil || v.Code != VerdictAccept {
		t.Fatalf("occupier finish: %v, %v", v, err)
	}
	waitActive(t, srv, 0)
	v2, err := c2.Check(SyntheticHeader(), SyntheticAccept(10))
	if err != nil {
		t.Fatalf("connection did not survive the busy verdict: %v", err)
	}
	if v2.Code != VerdictAccept {
		t.Fatalf("post-busy verdict %v, want accept", v2)
	}
	if srv.Stats().Busy != 1 {
		t.Fatalf("busy counter = %d, want 1", srv.Stats().Busy)
	}
}

// waitActive blocks until the server's active-session gauge reaches n.
func waitActive(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.sessionsActive.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("sessions active = %d, want %d", srv.sessionsActive.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLegacyClientNoAcks drives a raw legacy session (no token) over the
// wire and asserts the server's reply contains nothing but the verdict:
// pre-resume clients interoperate byte-identically.
func TestLegacyClientNoAcks(t *testing.T) {
	_, addr := startServer(t, Config{AckInterval: 2})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	bw := bufio.NewWriter(conn)
	writeFrame(bw, frameHello, appendHello(nil, SyntheticHeader()))
	writeFrame(bw, frameSymbols, descriptor.Marshal(SyntheticAccept(50)))
	writeFrame(bw, frameEnd, nil)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(conn)
	typ, payload, err := readFrame(br, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameVerdict {
		t.Fatalf("first reply frame is %#x, want verdict", typ)
	}
	v, err := parseVerdict(payload)
	if err != nil || v.Code != VerdictAccept {
		t.Fatalf("verdict %v, %v", v, err)
	}
}
