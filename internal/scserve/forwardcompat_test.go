package scserve

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
)

// These tests pin the wire format's forward-compatibility contract, which
// the grid fabric leans on: a frame carrying flag bits this version does
// not know is a *clean, named* parse error — never a panic, and never a
// silent misparse that would let a proxy or client misread a future
// peer's payload as something it isn't.

// helloWithFlags builds a minimal hello payload with an arbitrary flags
// field (bypassing appendHello, which can only emit known flags). The
// flags field is a uvarint on the wire, so high bits must be encoded,
// not written raw.
func helloWithFlags(flags uint64, rest ...byte) []byte {
	p := []byte{protocolVersion, SyntheticK, 1, 1, 2}
	p = binary.AppendUvarint(p, flags)
	return append(p, rest...)
}

func TestHelloUnknownFlagBitsRejected(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"bit7", helloWithFlags(1 << 7)},
		{"known+unknown", helloWithFlags(helloFlagNoValues | 1<<6)},
		// The unknown bit must be rejected even when it rides alongside a
		// well-formed token — not swallowed by the token parse.
		{"token+unknown", helloWithFlags(helloFlagToken|1<<6, 2, 'a', 'b')},
		{"tiered+unknown", helloWithFlags(helloFlagTiered | 1<<6)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseHello(tc.payload)
			if err == nil {
				t.Fatal("unknown flag bits parsed without error")
			}
			if !strings.Contains(err.Error(), "unknown flags") {
				t.Fatalf("error %q does not name the unknown flags", err)
			}
		})
	}
	// And the known bits alone still parse.
	if _, err := parseHello(helloWithFlags(helloFlagNoValues)); err != nil {
		t.Fatalf("known flags rejected: %v", err)
	}
}

func TestVerdictUnknownFlagBitsRejected(t *testing.T) {
	// A verdict code carrying a flag bit above the allocated extensions
	// must be refused as unknown, not stripped or misread.
	for _, code := range []byte{
		byte(VerdictAccept) | 0x20,
		byte(VerdictReject) | 0x40,
		byte(VerdictReject) | verdictFlagWitness | 0x20,
		byte(VerdictReject) | verdictFlagWitness | verdictFlagTier | 0x20,
	} {
		payload := append([]byte{code, 0, 0}, "msg"...)
		if _, err := parseVerdict(payload); err == nil {
			t.Fatalf("verdict code %#x with unknown flag bits parsed without error", code)
		} else if !strings.Contains(err.Error(), "unknown code") {
			t.Fatalf("code %#x: error %q does not name the unknown code", code, err)
		}
	}
	// The witness flag itself still round-trips.
	v := Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 2, CycleLen: 4, Msg: "cycle"}
	got, err := parseVerdict(appendVerdict(nil, v))
	if err != nil || got != v {
		t.Fatalf("witness verdict round trip: %+v, %v", got, err)
	}
}

// TestTieredFlagBitsRoundTrip pins the allocation side of the wire-flag
// registry contract, now that the tiered-verdict extension has shipped:
// the formerly reserved HelloFlagTiered/VerdictFlagTier bits parse as
// first-class extensions, round-trip losslessly, and — crucially for a
// mixed-version fleet — change nothing for peers that do not set them:
// a legacy hello re-encodes byte-identically and yields verdict payloads
// byte-identical to the pre-extension wire format.
func TestTieredFlagBitsRoundTrip(t *testing.T) {
	// Tiered hello: parses, carries the bit, re-encodes byte-identically.
	h, err := parseHello(helloWithFlags(descriptor.HelloFlagTiered))
	if err != nil {
		t.Fatalf("tiered hello rejected: %v", err)
	}
	if !h.Tiered {
		t.Fatal("tiered hello parsed without the Tiered bit")
	}
	enc := appendHello(nil, h)
	again, err := parseHello(enc)
	if err != nil || again != h {
		t.Fatalf("tiered hello round trip: %+v, %v", again, err)
	}
	// Alongside a token.
	h, err = parseHello(helloWithFlags(helloFlagToken|descriptor.HelloFlagTiered, 2, 'a', 'b'))
	if err != nil || !h.Tiered || h.Token != "ab" {
		t.Fatalf("tiered+token hello: %+v, %v", h, err)
	}

	// Legacy hello (no tier bit): byte-identical re-encode, untier-ed.
	legacy := helloWithFlags(helloFlagNoValues)
	h, err = parseHello(legacy)
	if err != nil || h.Tiered {
		t.Fatalf("legacy hello: %+v, %v", h, err)
	}
	if got := appendHello(nil, h); string(got) != string(legacy) {
		t.Fatalf("legacy hello re-encode differs: %x vs %x", got, legacy)
	}

	// Tiered verdicts: every defined tier code round-trips with and
	// without a reorder site, and parsers tolerate codes this build does
	// not know (a newer peer may have grown the ladder).
	for tier := 0; tier < spectrum.NumTiers; tier++ {
		v := Verdict{Code: VerdictReject, Symbol: 3, Offset: 17,
			Constraint: 2, CycleLen: 4,
			Tiered: true, Tier: tier, ReorderStore: -1, ReorderPast: -1, Msg: "cycle"}
		if tier == 3 || tier == 4 {
			v.ReorderStore, v.ReorderPast = 0, 1
		}
		got, err := parseVerdict(appendVerdict(nil, v))
		if err != nil || got != v {
			t.Fatalf("tier %d verdict round trip: %+v, %v", tier, got, err)
		}
	}
	future := Verdict{Code: VerdictReject, Symbol: 1, Offset: 2,
		Tiered: true, Tier: maxTierCode - 1, ReorderStore: -1, ReorderPast: -1, Msg: "m"}
	if got, err := parseVerdict(appendVerdict(nil, future)); err != nil || got != future {
		t.Fatalf("future tier code round trip: %+v, %v", got, err)
	}

	// Legacy verdict (no tier bit): payload byte-identical to the
	// pre-extension encoding, and parsed untier-ed.
	lv := Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 2, CycleLen: 4, Msg: "cycle"}
	payload := appendVerdict(nil, lv)
	want := []byte{byte(VerdictReject) | verdictFlagWitness, 4, 18, 3, 4}
	want = append(want, "cycle"...)
	if string(payload) != string(want) {
		t.Fatalf("legacy verdict payload changed: %x vs %x", payload, want)
	}
	got, err := parseVerdict(payload)
	if err != nil || got.Tiered || got != lv {
		t.Fatalf("legacy verdict round trip: %+v, %v", got, err)
	}
}

// TestTenantFlagBitsRoundTrip pins the tenant-identity hello extension
// the same way TestTieredFlagBitsRoundTrip pins the tier bit: the flag
// parses and round-trips, malformed payloads fail cleanly, and — the part
// a mixed-version fleet depends on — a tenant-free hello encodes
// byte-identically to the pre-tenant wire format.
func TestTenantFlagBitsRoundTrip(t *testing.T) {
	// Tenant hello: parses, carries the identity, re-encodes identically.
	h, err := parseHello(helloWithFlags(helloFlagTenant, 5, 'a', 'l', 'i', 'c', 'e'))
	if err != nil {
		t.Fatalf("tenant hello rejected: %v", err)
	}
	if h.Tenant != "alice" {
		t.Fatalf("tenant hello parsed tenant %q, want alice", h.Tenant)
	}
	enc := appendHello(nil, h)
	again, err := parseHello(enc)
	if err != nil || again != h {
		t.Fatalf("tenant hello round trip: %+v, %v", again, err)
	}

	// Tenant rides after the token/resume section: token+tenant together.
	h, err = parseHello(helloWithFlags(helloFlagToken|helloFlagTenant, 2, 'a', 'b', 3, 'b', 'o', 'b'))
	if err != nil || h.Token != "ab" || h.Tenant != "bob" {
		t.Fatalf("token+tenant hello: %+v, %v", h, err)
	}
	if got := appendHello(nil, h); string(got) != string(helloWithFlags(helloFlagToken|helloFlagTenant, 2, 'a', 'b', 3, 'b', 'o', 'b')) {
		t.Fatalf("token+tenant re-encode differs: %x", got)
	}

	// The tenant never participates in resume-header equality: two hellos
	// differing only in tenant must agree on the resume identity.
	a := Header{K: SyntheticK, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}, Token: "tok", Tenant: "alice"}
	b := Header{K: SyntheticK, Params: trace.Params{Procs: 1, Blocks: 1, Values: 2}, Token: "tok", Tenant: "bob"}
	if a.bare() != b.bare() {
		t.Fatal("tenant leaked into resume-header equality")
	}

	// Malformed tenants fail as clean parse errors.
	for name, payload := range map[string][]byte{
		"missing length":  helloWithFlags(helloFlagTenant),
		"zero length":     helloWithFlags(helloFlagTenant, 0),
		"truncated bytes": helloWithFlags(helloFlagTenant, 4, 'a', 'b'),
		"oversized":       append(helloWithFlags(helloFlagTenant, maxTenantLen+1), make([]byte, maxTenantLen+1)...),
	} {
		if _, err := parseHello(payload); err == nil {
			t.Fatalf("%s tenant hello parsed without error", name)
		}
	}

	// Legacy (tenant-free) hello: byte-identical re-encode.
	legacy := helloWithFlags(helloFlagNoValues)
	h, err = parseHello(legacy)
	if err != nil || h.Tenant != "" {
		t.Fatalf("legacy hello: %+v, %v", h, err)
	}
	if got := appendHello(nil, h); string(got) != string(legacy) {
		t.Fatalf("legacy hello re-encode differs: %x vs %x", got, legacy)
	}
}

// TestDrainingAndQuotaVerdictFamily pins the busy-family nesting the live
// operations protocol depends on: draining and quota verdicts are each
// *also* busy (so legacy retry loops back off safely instead of failing),
// they survive a wire round trip, and plain busy verdicts do not
// accidentally read as either refinement.
func TestDrainingAndQuotaVerdictFamily(t *testing.T) {
	d := DrainingVerdict("backend restarting")
	if !d.Draining() || !d.Busy() || d.Quota() {
		t.Fatalf("draining verdict classification: draining=%v busy=%v quota=%v", d.Draining(), d.Busy(), d.Quota())
	}
	q := QuotaVerdict(`tenant "alice" at session cap (2)`)
	if !q.Quota() || !q.Busy() || q.Draining() {
		t.Fatalf("quota verdict classification: quota=%v busy=%v draining=%v", q.Quota(), q.Busy(), q.Draining())
	}
	b := BusyVerdict("server at session capacity (4)")
	if !b.Busy() || b.Draining() || b.Quota() {
		t.Fatalf("plain busy verdict classification: busy=%v draining=%v quota=%v", b.Busy(), b.Draining(), b.Quota())
	}
	for _, v := range []Verdict{d, q, b} {
		got, err := parseVerdict(appendVerdict(nil, v))
		if err != nil || got != v {
			t.Fatalf("busy-family verdict round trip: %+v, %v", got, err)
		}
		if got.Busy() != v.Busy() || got.Draining() != v.Draining() || got.Quota() != v.Quota() {
			t.Fatalf("busy-family classification changed across the wire: %+v", got)
		}
	}
}

// TestServerAnswersUnknownHelloFlags: a live server receiving a hello
// from the future answers with a positioned protocol-error verdict and
// closes — the degrade path a mixed-version grid deployment takes.
func TestServerAnswersUnknownHelloFlags(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := helloWithFlags(1 << 6)
	frame := append([]byte{frameHello, byte(len(payload))}, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil || n < 2 {
		t.Fatalf("no answer to a future hello: n=%d err=%v", n, err)
	}
	if buf[0] != frameVerdict {
		t.Fatalf("answer frame type %#x, want verdict", buf[0])
	}
	v, err := parseVerdict(buf[2 : 2+int(buf[1])])
	if err != nil {
		t.Fatalf("answer verdict unparsable: %v", err)
	}
	if v.Code != VerdictProtocolError || !strings.Contains(v.Msg, "unknown flags") {
		t.Fatalf("answer %s, want protocol-error naming the unknown flags", v)
	}
}
