package scserve

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"scverify/internal/descriptor"
)

// These tests pin the wire format's forward-compatibility contract, which
// the grid fabric leans on: a frame carrying flag bits this version does
// not know is a *clean, named* parse error — never a panic, and never a
// silent misparse that would let a proxy or client misread a future
// peer's payload as something it isn't.

// helloWithFlags builds a minimal hello payload with an arbitrary flags
// field (bypassing appendHello, which can only emit known flags). The
// flags field is a uvarint on the wire, so high bits must be encoded,
// not written raw.
func helloWithFlags(flags uint64, rest ...byte) []byte {
	p := []byte{protocolVersion, SyntheticK, 1, 1, 2}
	p = binary.AppendUvarint(p, flags)
	return append(p, rest...)
}

func TestHelloUnknownFlagBitsRejected(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"bit3", helloWithFlags(1 << 3)},
		{"bit7", helloWithFlags(1 << 7)},
		{"known+unknown", helloWithFlags(helloFlagNoValues | 1<<4)},
		// The unknown bit must be rejected even when it rides alongside a
		// well-formed token — not swallowed by the token parse.
		{"token+unknown", helloWithFlags(helloFlagToken|1<<5, 2, 'a', 'b')},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseHello(tc.payload)
			if err == nil {
				t.Fatal("unknown flag bits parsed without error")
			}
			if !strings.Contains(err.Error(), "unknown flags") {
				t.Fatalf("error %q does not name the unknown flags", err)
			}
		})
	}
	// And the known bits alone still parse.
	if _, err := parseHello(helloWithFlags(helloFlagNoValues)); err != nil {
		t.Fatalf("known flags rejected: %v", err)
	}
}

func TestVerdictUnknownFlagBitsRejected(t *testing.T) {
	// A verdict code carrying a flag bit above the witness extension must
	// be refused as unknown, not stripped or misread.
	for _, code := range []byte{
		byte(VerdictAccept) | 0x10,
		byte(VerdictReject) | 0x20,
		byte(VerdictReject) | verdictFlagWitness | 0x10,
	} {
		payload := append([]byte{code, 0, 0}, "msg"...)
		if _, err := parseVerdict(payload); err == nil {
			t.Fatalf("verdict code %#x with unknown flag bits parsed without error", code)
		} else if !strings.Contains(err.Error(), "unknown code") {
			t.Fatalf("code %#x: error %q does not name the unknown code", code, err)
		}
	}
	// The witness flag itself still round-trips.
	v := Verdict{Code: VerdictReject, Symbol: 3, Offset: 17, Constraint: 2, CycleLen: 4, Msg: "cycle"}
	got, err := parseVerdict(appendVerdict(nil, v))
	if err != nil || got != v {
		t.Fatalf("witness verdict round trip: %+v, %v", got, err)
	}
}

// TestReservedFlagBitsStillRejected pins the parser side of the wire-flag
// registry contract: a bit may be *declared* in the descriptor registry
// (reserving its value so the next extension cannot collide) long before
// any parser *handles* it. Until the implementing release, parsers must
// keep rejecting reserved bits exactly like undeclared ones — a peer from
// the future degrades to a clean error, never to a misread session. When
// the tiered-verdict extension ships, this test is the checklist of
// parser sites it must update.
func TestReservedFlagBitsStillRejected(t *testing.T) {
	if _, err := parseHello(helloWithFlags(descriptor.HelloFlagTiered)); err == nil ||
		!strings.Contains(err.Error(), "unknown flags") {
		t.Fatalf("reserved hello bit HelloFlagTiered not rejected: %v", err)
	}
	if _, err := parseHello(helloWithFlags(helloFlagToken|descriptor.HelloFlagTiered, 2, 'a', 'b')); err == nil ||
		!strings.Contains(err.Error(), "unknown flags") {
		t.Fatalf("reserved hello bit alongside a token not rejected: %v", err)
	}
	for _, code := range []byte{
		byte(VerdictReject) | descriptor.VerdictFlagTier,
		byte(VerdictReject) | verdictFlagWitness | descriptor.VerdictFlagTier,
	} {
		payload := append([]byte{code, 4, 18}, "msg"...)
		if _, err := parseVerdict(payload); err == nil || !strings.Contains(err.Error(), "unknown code") {
			t.Fatalf("reserved verdict bit %#x not rejected: %v", code, err)
		}
	}
}

// TestServerAnswersUnknownHelloFlags: a live server receiving a hello
// from the future answers with a positioned protocol-error verdict and
// closes — the degrade path a mixed-version grid deployment takes.
func TestServerAnswersUnknownHelloFlags(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := helloWithFlags(1 << 6)
	frame := append([]byte{frameHello, byte(len(payload))}, payload...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil || n < 2 {
		t.Fatalf("no answer to a future hello: n=%d err=%v", n, err)
	}
	if buf[0] != frameVerdict {
		t.Fatalf("answer frame type %#x, want verdict", buf[0])
	}
	v, err := parseVerdict(buf[2 : 2+int(buf[1])])
	if err != nil {
		t.Fatalf("answer verdict unparsable: %v", err)
	}
	if v.Code != VerdictProtocolError || !strings.Contains(v.Msg, "unknown flags") {
		t.Fatalf("answer %s, want protocol-error naming the unknown flags", v)
	}
}
