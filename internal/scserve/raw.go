package scserve

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
)

// This file is the raw wire surface the scgrid fabric builds on: the grid
// proxy relays scserve frames between clients and backends without owning
// either end of a session, so it needs frame-level I/O and hello parsing
// that the in-package Client and Server keep private. Everything here is
// a thin exported veneer over frame.go; the framing rules themselves are
// documented there.

// Exported frame type codes, for code that relays or inspects frames
// (the scgrid proxy) rather than speaking sessions through Client.
const (
	FrameHello      = frameHello
	FrameSymbols    = frameSymbols
	FrameEnd        = frameEnd
	FrameStatsReq   = frameStatsReq
	FrameVerdict    = frameVerdict
	FrameStatsReply = frameStatsReply
	FrameAck        = frameAck

	// Explore-session frames (the scmc coordinator speaks these raw).
	FrameExplore     = frameExplore
	FrameExploreFwd  = frameExploreFwd
	FrameExploreRep  = frameExploreRep
	FrameExploreViol = frameExploreViol
)

// ReadRawFrame reads one frame from br, enforcing maxPayload. A clean EOF
// before the type byte is io.EOF; an EOF inside a frame is
// io.ErrUnexpectedEOF.
func ReadRawFrame(br *bufio.Reader, maxPayload int) (typ byte, payload []byte, err error) {
	return readFrame(br, maxPayload)
}

// WriteRawFrame writes one frame to bw. The caller flushes.
func WriteRawFrame(bw *bufio.Writer, typ byte, payload []byte) error {
	return writeFrame(bw, typ, payload)
}

// ParseHello decodes a hello frame payload.
func ParseHello(payload []byte) (Header, error) { return parseHello(payload) }

// AppendHello appends h's hello payload encoding to dst.
func AppendHello(dst []byte, h Header) []byte { return appendHello(dst, h) }

// AppendVerdict appends v's verdict payload encoding to dst.
func AppendVerdict(dst []byte, v Verdict) []byte { return appendVerdict(dst, v) }

// ParseVerdict decodes a verdict frame payload.
func ParseVerdict(payload []byte) (Verdict, error) { return parseVerdict(payload) }

// NewToken draws a random 16-byte hex resume token, the form RetryClient
// and the scgrid fabric use to name resumable sessions.
func NewToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("scserve: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
