package observer

import (
	"encoding/binary"
	"sort"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// RealTime is the trivial ST-order generator of Section 4.2 for protocols
// with the real-time ST reordering property: for every block, the ST order
// is exactly the order in which the stores appear in the run. All
// published hardware protocols satisfy this; only designs like Lazy
// Caching need more. The generator's state is one node handle per block.
type RealTime struct {
	last map[trace.BlockID]NodeHandle
}

// NewRealTime returns a real-time ST-order generator.
func NewRealTime() *RealTime {
	return &RealTime{last: make(map[trace.BlockID]NodeHandle)}
}

// OnStore orders the new store immediately after the previous store to the
// same block; the first store of a block is known to be first right away.
func (g *RealTime) OnStore(h NodeHandle, op trace.Op) Update {
	var u Update
	if prev, ok := g.last[op.Block]; ok {
		u.Edges = append(u.Edges, STEdge{From: prev, To: h})
	} else {
		u.Firsts = append(u.Firsts, FirstStore{Block: op.Block, Node: h})
	}
	g.last[op.Block] = h
	return u
}

// OnInternal is a no-op: real-time ordering needs no internal events.
func (g *RealTime) OnInternal(protocol.Action) Update { return Update{} }

// Finish is a no-op: every store was ordered as it appeared.
func (g *RealTime) Finish() Update { return Update{} }

// StateKey encodes the per-block last-store handles via the resolver
// installed by the observer (see Observer.StateKey), falling back to raw
// handles when used stand-alone.
func (g *RealTime) StateKey() []byte {
	return g.StateKeyResolved(func(h NodeHandle) int { return int(h) })
}

// StateKeyResolved implements ResolvableGenerator.
func (g *RealTime) StateKeyResolved(resolve func(NodeHandle) int) []byte {
	blocks := make([]int, 0, len(g.last))
	for b := range g.last {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	var key []byte
	for _, b := range blocks {
		key = binary.AppendUvarint(key, uint64(b))
		key = binary.AppendUvarint(key, uint64(resolve(g.last[trace.BlockID(b)])))
	}
	return key
}

// ResolvableGenerator is implemented by generators whose state keys should
// name nodes by their stable descriptor IDs rather than raw handles; the
// observer passes a resolver mapping handles to canonical IDs.
type ResolvableGenerator interface {
	StateKeyResolved(resolve func(NodeHandle) int) []byte
}

// IdleGenerator is implemented by generators that can report whether a
// Finish call would be a no-op (no pending serialization decisions). The
// model checker uses it to run end-of-run checks without cloning.
type IdleGenerator interface {
	Idle() bool
}

// Idle implements IdleGenerator: the real-time generator serializes every
// store the moment it appears, so Finish never has work to do.
func (g *RealTime) Idle() bool { return true }
