package observer

import (
	"strings"
	"testing"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/protocol"
	"scverify/internal/protocols/serial"
	"scverify/internal/trace"
)

// figure4Script reproduces the run of the paper's Figure 4.
func figure4Script() *protocol.Scripted {
	return &protocol.Scripted{
		ProtoName: "figure4",
		P:         2, B: 3, V: 3, L: 4,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.MemOp(trace.ST(2, 2, 2)), Loc: 4},
			{Action: protocol.Internal("Get-Shared", 2, 1), Copies: []protocol.Copy{{Dst: 3, Src: 1}}},
			{Action: protocol.MemOp(trace.ST(1, 3, 3)), Loc: 1},
		},
	}
}

func runScript(t *testing.T, p protocol.Protocol) *protocol.Run {
	t.Helper()
	r := protocol.NewRunner(p)
	for {
		en := r.Enabled()
		if len(en) == 0 {
			return r.Run()
		}
		r.Take(en[0])
	}
}

func TestInheritanceObserverFigure4(t *testing.T) {
	// Lemma 4.1 on Figure 4's run: the inheritance generator should emit
	// node 1 (ST B1 in location 1), node 4 (ST B2 in location 4),
	// add-ID(1,3) for Get-Shared, then node 1 again (ST B3 overwrites).
	run := runScript(t, figure4Script())
	s, err := ObserveInheritance(run)
	if err != nil {
		t.Fatal(err)
	}
	want := descriptor.Stream{
		descriptor.Node{ID: 1, Op: opp(trace.ST(1, 1, 1))},
		descriptor.Node{ID: 4, Op: opp(trace.ST(2, 2, 2))},
		descriptor.AddID{Existing: 1, New: 3},
		descriptor.Node{ID: 1, Op: opp(trace.ST(1, 3, 3))},
	}
	if s.Text() != want.Text() {
		t.Errorf("stream = %s\nwant    %s", s.Text(), want.Text())
	}
	// ID-set semantics after the stream: location 3 still holds ST(P1,B1,1)
	// (node index 0), location 1 holds ST(P1,B3,3) (node index 2), matching
	// the ST-index table of Figure 4(c).
	tr := descriptor.NewTracker()
	for _, sym := range s {
		tr.Apply(sym)
	}
	if n, ok := tr.Owner(3); !ok || n != 0 {
		t.Errorf("location 3 owner = %d, %v; want node 0", n, ok)
	}
	if n, ok := tr.Owner(1); !ok || n != 2 {
		t.Errorf("location 1 owner = %d, %v; want node 2", n, ok)
	}
	if n, ok := tr.Owner(4); !ok || n != 1 {
		t.Errorf("location 4 owner = %d, %v; want node 1", n, ok)
	}
	if _, ok := tr.Owner(2); ok {
		t.Error("location 2 should hold no store")
	}
}

func opp(o trace.Op) *trace.Op { return &o }

func TestInheritanceObserverLoadEdge(t *testing.T) {
	script := &protocol.Scripted{
		ProtoName: "ld", P: 2, B: 1, V: 1, L: 2,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.Internal("share", 2, 1), Copies: []protocol.Copy{{Dst: 2, Src: 1}}},
			{Action: protocol.MemOp(trace.LD(2, 1, 1)), Loc: 2},
		},
	}
	run := runScript(t, script)
	s, err := ObserveInheritance(run)
	if err != nil {
		t.Fatal(err)
	}
	d := descriptor.Decode(s)
	if len(d.Edges) != 1 || d.Edges[0].From != 0 || d.Edges[0].To != 1 {
		t.Fatalf("inheritance edges = %+v", d.Edges)
	}
}

func TestInheritanceObserverInvalidation(t *testing.T) {
	script := &protocol.Scripted{
		ProtoName: "inv", P: 1, B: 1, V: 1, L: 1,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.Internal("evict", 1, 1), Copies: []protocol.Copy{{Dst: 1, Src: 0}}},
		},
	}
	run := runScript(t, script)
	s, err := ObserveInheritance(run)
	if err != nil {
		t.Fatal(err)
	}
	tr := descriptor.NewTracker()
	for _, sym := range s {
		tr.Apply(sym)
	}
	if _, ok := tr.Owner(1); ok {
		t.Error("location 1 should be unbound after invalidation")
	}
}

// observeAndCheck runs a random serial-memory run through the full
// observer and the full checker.
func observeAndCheck(t *testing.T, p protocol.Protocol, steps int, seed int64) error {
	t.Helper()
	run := protocol.RandomRun(p, steps, seed)
	stream, o, err := ObserveRun(run, NewRealTime(), Config{})
	if err != nil {
		t.Fatalf("observer failed on run %s: %v", run, err)
	}
	c := checker.New(o.K())
	c.SetParams(p.Params())
	for _, sym := range stream {
		if err := c.Step(sym); err != nil {
			return err
		}
	}
	return c.Finish()
}

func TestSerialMemoryRunsAccepted(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 30; seed++ {
		if err := observeAndCheck(t, p, 25, seed); err != nil {
			t.Fatalf("seed %d: serial memory rejected: %v", seed, err)
		}
	}
}

func TestSerialMemoryTracesAreSC(t *testing.T) {
	// Cross-check: the observed stream's trace equals the run's trace, and
	// the run's trace has a serial reordering (here: itself).
	p := serial.New(trace.Params{Procs: 3, Blocks: 2, Values: 2})
	run := protocol.RandomRun(p, 20, 7)
	stream, _, err := ObserveRun(run, NewRealTime(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := stream.Trace()
	if got.String() != run.Trace.String() {
		t.Errorf("observer trace %s != run trace %s", got, run.Trace)
	}
	if !run.Trace.IsSerial() {
		t.Error("serial memory produced a non-serial trace")
	}
}

func TestObserverCatchesWrongLoadValue(t *testing.T) {
	// A protocol whose load returns a value that its tracking label says
	// the location does not hold: the observer must flag inconsistency.
	script := &protocol.Scripted{
		ProtoName: "wrong", P: 1, B: 1, V: 2, L: 1,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.MemOp(trace.LD(1, 1, 2)), Loc: 1},
		},
	}
	run := runScript(t, script)
	_, _, err := ObserveRun(run, NewRealTime(), Config{})
	if err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("got %v", err)
	}
}

func TestObserverCatchesLoadFromEmptyLocation(t *testing.T) {
	script := &protocol.Scripted{
		ProtoName: "empty", P: 1, B: 1, V: 1, L: 1,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.LD(1, 1, 1)), Loc: 1},
		},
	}
	run := runScript(t, script)
	_, _, err := ObserveRun(run, NewRealTime(), Config{})
	if err == nil || !strings.Contains(err.Error(), "no store") {
		t.Errorf("got %v", err)
	}
}

func TestObserverBottomLoadBeforeAndAfterFirstStore(t *testing.T) {
	script := &protocol.Scripted{
		ProtoName: "bottom", P: 2, B: 1, V: 1, L: 2,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.LD(2, 1, trace.Bottom)), Loc: 2},
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.MemOp(trace.LD(2, 1, trace.Bottom)), Loc: 2},
		},
	}
	run := runScript(t, script)
	stream, o, err := ObserveRun(run, NewRealTime(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checkStream(stream, o.K()); err != nil {
		t.Errorf("⊥-load pattern rejected: %v", err)
	}
	// Both ⊥-loads must have forced edges to the store.
	forced := 0
	for _, sym := range stream {
		if e, ok := sym.(descriptor.Edge); ok && e.Label == descriptor.Forced {
			forced++
		}
	}
	if forced != 2 {
		t.Errorf("forced edges = %d, want 2", forced)
	}
}

func checkStream(s descriptor.Stream, k int) error {
	return checker.Check(s, k)
}

func TestObserverStaleCopyGetsForcedEdge(t *testing.T) {
	// A load from a stale copy after a newer store to the same block: the
	// forced edge to the successor must be emitted immediately.
	script := &protocol.Scripted{
		ProtoName: "stale", P: 2, B: 1, V: 2, L: 3,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.Internal("share", 2, 1), Copies: []protocol.Copy{{Dst: 3, Src: 1}}},
			{Action: protocol.MemOp(trace.ST(1, 1, 2)), Loc: 1},
			{Action: protocol.MemOp(trace.LD(2, 1, 1)), Loc: 3}, // stale read
		},
	}
	run := runScript(t, script)
	stream, o, err := ObserveRun(run, NewRealTime(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := checkStream(stream, o.K()); err != nil {
		t.Errorf("stale-copy pattern rejected: %v", err)
	}
	// The stream must contain a forced edge (the stale load before the
	// second store in any serial order would otherwise be legal).
	hasForced := false
	for _, sym := range stream {
		if e, ok := sym.(descriptor.Edge); ok && e.Label == descriptor.Forced {
			hasForced = true
		}
	}
	if !hasForced {
		t.Error("no forced edge emitted for stale read")
	}
}

func TestObserverStaleReadAfterOverwriteIsNotSC(t *testing.T) {
	// Reading the stale copy *after also reading the new value* on the same
	// processor is an SC violation; the checker must reject the stream.
	script := &protocol.Scripted{
		ProtoName: "staleviolation", P: 2, B: 1, V: 2, L: 3,
		Steps: []protocol.ScriptStep{
			{Action: protocol.MemOp(trace.ST(1, 1, 1)), Loc: 1},
			{Action: protocol.Internal("share", 2, 1), Copies: []protocol.Copy{{Dst: 3, Src: 1}}},
			{Action: protocol.MemOp(trace.ST(1, 1, 2)), Loc: 1},
			{Action: protocol.Internal("share2", 2, 1), Copies: []protocol.Copy{{Dst: 2, Src: 1}}},
			{Action: protocol.MemOp(trace.LD(2, 1, 2)), Loc: 2}, // sees new value
			{Action: protocol.MemOp(trace.LD(2, 1, 1)), Loc: 3}, // then stale: cycle
		},
	}
	run := runScript(t, script)
	stream, o, err := ObserveRun(run, NewRealTime(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !trace.HasSerialReordering(run.Trace) {
		// Ground truth agrees this trace is not SC.
	} else {
		t.Fatal("test premise wrong: trace is SC")
	}
	if err := checkStream(stream, o.K()); err == nil {
		t.Error("non-SC stale-read pattern accepted")
	}
}

func TestObserverPoolExhaustion(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	run := protocol.RandomRun(p, 30, 3)
	_, _, err := ObserveRun(run, NewRealTime(), Config{PoolSize: 2})
	if err == nil || !strings.Contains(err.Error(), "pool") {
		t.Errorf("got %v", err)
	}
}

func TestObserverIDsStayWithinPool(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	for seed := int64(0); seed < 10; seed++ {
		run := protocol.RandomRun(p, 40, seed)
		stream, o, err := ObserveRun(run, NewRealTime(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got := stream.MaxID(); got > o.K()+1 {
			t.Fatalf("stream uses ID %d > pool %d", got, o.K()+1)
		}
		if err := stream.Validate(o.K(), true); err != nil {
			t.Fatalf("stream invalid: %v", err)
		}
	}
}

func TestObserverStateKeyDeterministic(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	run := protocol.RandomRun(p, 15, 5)
	var keys1, keys2 [][]byte
	for pass := 0; pass < 2; pass++ {
		o := New(p, NewRealTime(), Config{}, func(descriptor.Symbol) error { return nil })
		var keys [][]byte
		for _, step := range run.Steps {
			if err := o.Step(step.Transition); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, o.StateKey())
		}
		if pass == 0 {
			keys1 = keys
		} else {
			keys2 = keys
		}
	}
	for i := range keys1 {
		if string(keys1[i]) != string(keys2[i]) {
			t.Fatalf("state key diverged at step %d", i)
		}
	}
}

func TestDefaultPoolSize(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 3, Values: 2})
	want := 3 + 2*3 + 2 + 2*3 + 2 // L + p·b + p + 2b + 2
	if got := DefaultPoolSize(p); got != want {
		t.Errorf("DefaultPoolSize = %d, want %d", got, want)
	}
}

func TestObserverStats(t *testing.T) {
	p := serial.New(trace.Params{Procs: 2, Blocks: 2, Values: 2})
	run := protocol.RandomRun(p, 20, 9)
	stream, o, err := ObserveRun(run, NewRealTime(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Ops != len(run.Trace) {
		t.Errorf("Ops = %d, want %d", st.Ops, len(run.Trace))
	}
	if st.Symbols != len(stream) {
		t.Errorf("Symbols = %d, want %d", st.Symbols, len(stream))
	}
	if st.PeakIDs < 1 || st.PeakIDs > o.K()+1 {
		t.Errorf("PeakIDs = %d outside (0,%d]", st.PeakIDs, o.K()+1)
	}
}
