package observer

import (
	"fmt"

	"scverify/internal/descriptor"
	"scverify/internal/protocol"
)

// InheritanceObserver is the literal generator of Lemma 4.1: it emits a
// descriptor of the *inheritance graph* of a run, using the protocol's
// storage-location numbers directly as node IDs — a store with tracking
// label l becomes a node with ID l; a copy from location c to location l
// becomes add-ID(c,l); a load with tracking label l becomes a node with ID
// L+1 and an inheritance edge (l, L+1). The full witness observer
// (Observer) supersedes this construction; this one exists to reproduce
// the paper's Section 4.1 example (Figure 4) and to test the add-ID
// semantics end to end.
//
// ID L+2 is reserved and never bound; add-ID(L+2, l) therefore releases
// location l's ID, modelling invalidation.
type InheritanceObserver struct {
	L    int
	emit func(descriptor.Symbol) error
	err  error
}

// NewInheritanceObserver returns a Lemma 4.1 generator over L locations.
func NewInheritanceObserver(locations int, emit func(descriptor.Symbol) error) *InheritanceObserver {
	return &InheritanceObserver{L: locations, emit: emit}
}

// K returns the bandwidth bound of the emitted descriptors: IDs range over
// 1..L+2, so k = L+1.
func (g *InheritanceObserver) K() int { return g.L + 1 }

func (g *InheritanceObserver) send(sym descriptor.Symbol) error {
	if g.err != nil {
		return g.err
	}
	if err := g.emit(sym); err != nil {
		g.err = err
	}
	return g.err
}

// Step observes one executed transition, per the three bullets of the
// Lemma 4.1 proof.
func (g *InheritanceObserver) Step(t protocol.Transition) error {
	if g.err != nil {
		return g.err
	}
	switch {
	case !t.Action.IsMem():
		for _, cp := range t.Copies {
			if cp.Dst == cp.Src {
				continue
			}
			src := cp.Src
			if src == 0 {
				src = g.L + 2 // reserved unbound ID: releases Dst
			}
			if err := g.send(descriptor.AddID{Existing: src, New: cp.Dst}); err != nil {
				return err
			}
		}
		return nil
	case t.Action.Op.IsStore():
		if t.Loc < 1 || t.Loc > g.L {
			g.err = fmt.Errorf("observer: store tracking label %d outside 1..%d", t.Loc, g.L)
			return g.err
		}
		op := *t.Action.Op
		return g.send(descriptor.Node{ID: t.Loc, Op: &op})
	default:
		if t.Loc < 1 || t.Loc > g.L {
			g.err = fmt.Errorf("observer: load tracking label %d outside 1..%d", t.Loc, g.L)
			return g.err
		}
		op := *t.Action.Op
		if err := g.send(descriptor.Node{ID: g.L + 1, Op: &op}); err != nil {
			return err
		}
		return g.send(descriptor.Edge{From: t.Loc, To: g.L + 1, Label: descriptor.Inh})
	}
}

// ObserveInheritance replays a run through a fresh Lemma 4.1 generator and
// returns the inheritance-graph descriptor.
func ObserveInheritance(run *protocol.Run) (descriptor.Stream, error) {
	var stream descriptor.Stream
	g := NewInheritanceObserver(run.Protocol.Locations(), func(sym descriptor.Symbol) error {
		stream = append(stream, sym)
		return nil
	})
	for _, step := range run.Steps {
		if err := g.Step(step.Transition); err != nil {
			return stream, err
		}
	}
	return stream, nil
}
