package observer

import (
	"encoding/binary"
	"sort"

	"scverify/internal/trace"
)

// StateKey returns a canonical encoding of the observer's state. Nodes are
// named by their descriptor IDs, which are stable for a node's lifetime
// and drawn from a bounded pool, so the key space is finite — the property
// Theorem 4.1 needs for the observer to be a finite-state protocol, and
// the property the model checker needs to close the product state space.
func (o *Observer) StateKey() []byte {
	return o.keyWithRename(nil)
}

// CanonicalKey returns the observer state key under the canonical ID
// renaming of CanonicalRename, so that states differing only in ID
// allocation history collide. The paired checker key must be renamed with
// the same permutation (see checker.Checker.StateKeyRenamed).
func (o *Observer) CanonicalKey(rename []int) []byte {
	return o.keyWithRename(rename)
}

func (o *Observer) keyWithRename(rename []int) []byte {
	if o.err != nil {
		return []byte{0xff}
	}
	mapID := func(id int) int {
		if rename == nil {
			return id
		}
		return rename[id]
	}
	var key []byte
	put := func(vs ...uint64) {
		for _, v := range vs {
			key = binary.AppendUvarint(key, v)
		}
	}
	idOf := func(n *onode) uint64 {
		if n == nil {
			return 0
		}
		return uint64(mapID(n.id))
	}

	// Location map.
	for _, n := range o.locToNode[1:] {
		put(idOf(n))
	}

	// Live nodes sorted by (renamed) ID.
	live := make([]*onode, 0, len(o.nodes))
	for _, n := range o.nodes {
		live = append(live, n)
	}
	sort.Slice(live, func(i, j int) bool { return mapID(live[i].id) < mapID(live[j].id) })
	put(uint64(len(live)))
	for _, n := range live {
		flags := uint64(0)
		if n.stIn {
			flags |= 1
		}
		if n.succPinned {
			flags |= 2
		}
		put(uint64(mapID(n.id)), uint64(n.op.Kind), uint64(n.op.Proc), uint64(n.op.Block), uint64(n.op.Value), flags)
		put(uint64(n.locRefs), uint64(n.pins))
		// A store's successor pointer only influences future emissions while
		// the store is inh-active (succPinned); after that only the fact
		// that the store has been ordered matters, so a stale pointer to a
		// released successor must not leak into the key.
		ordered := uint64(0)
		succ := uint64(0)
		if n.stSucc != nil {
			ordered = 1
			if n.succPinned {
				succ = idOf(n.stSucc)
			}
		}
		put(ordered, succ)
		if n.pending != nil {
			procs := make([]int, 0, len(n.pending))
			for p := range n.pending {
				procs = append(procs, int(p))
			}
			sort.Ints(procs)
			put(uint64(len(procs)))
			for _, p := range procs {
				put(uint64(p), idOf(n.pending[trace.ProcID(p)]))
			}
		} else {
			put(0)
		}
	}

	// Program-order tails.
	procs := make([]int, 0, len(o.lastOp))
	for p := range o.lastOp {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	put(uint64(len(procs)))
	for _, p := range procs {
		put(uint64(p), idOf(o.lastOp[trace.ProcID(p)]))
	}

	// First stores.
	blocks := make([]int, 0, len(o.firstSt))
	for b := range o.firstSt {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	put(uint64(len(blocks)))
	for _, b := range blocks {
		put(uint64(b), idOf(o.firstSt[trace.BlockID(b)]))
	}

	// Pending ⊥-loads.
	bkeys := make([][2]int, 0, len(o.bottoms))
	for k := range o.bottoms {
		bkeys = append(bkeys, k)
	}
	sort.Slice(bkeys, func(i, j int) bool {
		if bkeys[i][0] != bkeys[j][0] {
			return bkeys[i][0] < bkeys[j][0]
		}
		return bkeys[i][1] < bkeys[j][1]
	})
	put(uint64(len(bkeys)))
	for _, k := range bkeys {
		put(uint64(k[0]), uint64(k[1]), idOf(o.bottoms[k]))
	}

	// Generator state, with handles resolved to descriptor IDs when the
	// generator supports it.
	var genKey []byte
	if rg, ok := o.gen.(ResolvableGenerator); ok {
		genKey = rg.StateKeyResolved(func(h NodeHandle) int {
			if n, ok := o.nodes[h]; ok {
				return mapID(n.id)
			}
			return 0
		})
	} else {
		genKey = o.gen.StateKey()
	}
	key = append(key, 0xfe)
	key = append(key, genKey...)
	return key
}
