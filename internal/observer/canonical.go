package observer

import (
	"sort"

	"scverify/internal/trace"
)

// RoleGenerator is implemented by ST-order generators that hold node
// handles in their state; visiting them in a fixed role order lets the
// observer compute a history-independent canonical ID renaming.
type RoleGenerator interface {
	Roles(visit func(NodeHandle))
}

// Roles visits the RealTime generator's per-block last stores in block
// order.
func (g *RealTime) Roles(visit func(NodeHandle)) {
	blocks := make([]int, 0, len(g.last))
	for b := range g.last {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		visit(g.last[trace.BlockID(b)])
	}
}

// CanonicalRename computes a permutation of descriptor IDs that depends
// only on the observer's abstract state, not on the history of pool
// allocations: live nodes are numbered by a fixed traversal of the
// observer's roles (locations, program-order tails, first stores, pending
// ⊥-loads, generator roles, then successors and pending loads of already-
// numbered nodes), and free IDs are numbered by their pop order. The
// returned slice maps raw ID → canonical ID for 1..poolSize, with the
// reserved release ID mapped to itself. Renaming the observer's and
// checker's state keys through this permutation makes runs that differ
// only in allocation history collide in the model checker's visited set.
func (o *Observer) CanonicalRename() []int {
	pi := make([]int, o.poolSize+2)
	next := 1
	queue := make([]*onode, 0, len(o.nodes))
	name := func(n *onode) {
		if n == nil || pi[n.id] != 0 {
			return
		}
		pi[n.id] = next
		next++
		queue = append(queue, n)
	}

	for _, n := range o.locToNode[1:] {
		name(n)
	}
	procs := make([]int, 0, len(o.lastOp))
	for p := range o.lastOp {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	for _, p := range procs {
		name(o.lastOp[trace.ProcID(p)])
	}
	blocks := make([]int, 0, len(o.firstSt))
	for b := range o.firstSt {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		name(o.firstSt[trace.BlockID(b)])
	}
	bkeys := make([][2]int, 0, len(o.bottoms))
	for k := range o.bottoms {
		bkeys = append(bkeys, k)
	}
	sort.Slice(bkeys, func(i, j int) bool {
		if bkeys[i][0] != bkeys[j][0] {
			return bkeys[i][0] < bkeys[j][0]
		}
		return bkeys[i][1] < bkeys[j][1]
	})
	for _, k := range bkeys {
		name(o.bottoms[k])
	}
	if rg, ok := o.gen.(RoleGenerator); ok {
		rg.Roles(func(h NodeHandle) {
			if n, ok := o.nodes[h]; ok {
				name(n)
			}
		})
	}
	// Breadth-first closure over structural references.
	for i := 0; i < len(queue); i++ {
		n := queue[i]
		name(n.stSucc)
		if n.pending != nil {
			ps := make([]int, 0, len(n.pending))
			for p := range n.pending {
				ps = append(ps, int(p))
			}
			sort.Ints(ps)
			for _, p := range ps {
				name(n.pending[trace.ProcID(p)])
			}
		}
	}
	// Free IDs in pop order (top of stack allocates first).
	for i := len(o.freeIDs) - 1; i >= 0; i-- {
		id := o.freeIDs[i]
		if pi[id] == 0 {
			pi[id] = next
			next++
		}
	}
	// Defensive: any remaining raw IDs (should not occur — every live node
	// is reachable from a role, every dead ID is in the free pool).
	for id := 1; id <= o.poolSize; id++ {
		if pi[id] == 0 {
			pi[id] = next
			next++
		}
	}
	pi[o.poolSize+1] = o.poolSize + 1
	return pi
}
