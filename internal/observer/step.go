package observer

import (
	"fmt"
	"sort"

	"scverify/internal/descriptor"
	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// Step observes one executed protocol transition and emits the descriptor
// symbols it induces. Transitions must be fed in execution order.
func (o *Observer) Step(t protocol.Transition) error {
	if o.err != nil {
		return o.err
	}
	var err error
	switch {
	case !t.Action.IsMem():
		err = o.stepInternal(t)
	case t.Action.Op.IsStore():
		err = o.stepStore(t)
	default:
		err = o.stepLoad(t)
	}
	if err != nil {
		return err
	}
	// Errors raised inside release emissions do not propagate through the
	// void helpers; surface them at the step boundary.
	return o.err
}

// stepInternal applies copy tracking labels to the location map and lets
// the ST-order generator observe the action.
func (o *Observer) stepInternal(t protocol.Transition) error {
	o.applyCopies(t.Copies)
	return o.applyUpdate(o.gen.OnInternal(t.Action))
}

// applyCopies moves values between locations per the copy tracking labels.
// All copies read the same snapshot of the location map: the pre-
// transition map for internal actions, and the post-operation map for
// copies attached to memory operations (so a write-through store's copy
// from its freshly written line propagates the new value).
func (o *Observer) applyCopies(copies []protocol.Copy) {
	if len(copies) == 0 {
		return
	}
	pre := make([]*onode, len(o.locToNode))
	copy(pre, o.locToNode)
	for _, cp := range copies {
		if cp.Dst == cp.Src {
			continue
		}
		var src *onode
		if cp.Src != 0 {
			src = pre[cp.Src]
		}
		old := o.locToNode[cp.Dst]
		if old == src {
			continue
		}
		o.locToNode[cp.Dst] = src
		if src != nil {
			src.locRefs++
		}
		if old != nil {
			o.decLocRef(old)
		}
	}
}

// stepStore adds the store node, its program-order edge, installs the
// store's value in its location, and applies whatever ST-order information
// the generator derives.
func (o *Observer) stepStore(t protocol.Transition) error {
	op := *t.Action.Op
	o.stats.Ops++
	o.traceLen++
	n, err := o.newNode(op)
	if err != nil {
		return err
	}
	if err := o.emitProgramOrder(n); err != nil {
		return err
	}
	if t.Loc < 1 || t.Loc > len(o.locToNode)-1 {
		return o.fail(fmt.Errorf("observer: store %s has tracking label %d outside 1..%d", op, t.Loc, len(o.locToNode)-1))
	}
	old := o.locToNode[t.Loc]
	o.locToNode[t.Loc] = n
	n.locRefs++
	if old != nil {
		o.decLocRef(old)
	}
	// Copies attached to a store read the post-operation map: a write-
	// through store propagates its own fresh value to further locations in
	// the same transition.
	o.applyCopies(t.Copies)
	// The generator must eventually order this store; keep it addressable
	// until its outgoing ST-order edge is emitted.
	o.pin(n)
	return o.applyUpdate(o.gen.OnStore(n.h, op))
}

// stepLoad adds the load node, its program-order edge, and its inheritance
// edge (from the tracking label), plus any immediately-determined forced
// edge.
func (o *Observer) stepLoad(t protocol.Transition) error {
	op := *t.Action.Op
	o.stats.Ops++
	o.traceLen++
	n, err := o.newNode(op)
	if err != nil {
		return err
	}
	if err := o.emitProgramOrder(n); err != nil {
		return err
	}
	if t.Loc < 1 || t.Loc > len(o.locToNode)-1 {
		return o.fail(fmt.Errorf("observer: load %s has tracking label %d outside 1..%d", op, t.Loc, len(o.locToNode)-1))
	}
	src := o.locToNode[t.Loc]

	if op.Value == trace.Bottom {
		if src != nil {
			return o.fail(fmt.Errorf("observer: %s read location %d which holds %s (tracking labels inconsistent)", op, t.Loc, src.op))
		}
		if first, known := o.firstSt[op.Block]; known {
			return o.send(descriptor.Edge{From: n.id, To: first.id, Label: descriptor.Forced})
		}
		key := [2]int{int(op.Proc), int(op.Block)}
		if prev, ok := o.bottoms[key]; ok {
			o.unpin(prev)
		}
		o.bottoms[key] = n
		o.pin(n)
		return nil
	}

	if src == nil {
		return o.fail(fmt.Errorf("observer: %s read location %d which holds no store's value (tracking labels inconsistent)", op, t.Loc))
	}
	if src.op.Block != op.Block || src.op.Value != op.Value {
		return o.fail(fmt.Errorf("observer: %s read location %d which holds %s (tracking labels inconsistent)", op, t.Loc, src.op))
	}
	if err := o.send(descriptor.Edge{From: src.id, To: n.id, Label: descriptor.Inh}); err != nil {
		return err
	}
	if src.stSucc != nil {
		// The inherited-from store is already ordered: the forced edge is
		// determined now and the load carries no pending obligation.
		return o.send(descriptor.Edge{From: n.id, To: src.stSucc.id, Label: descriptor.Forced})
	}
	if prev, ok := src.pending[op.Proc]; ok {
		o.unpin(prev)
	}
	src.pending[op.Proc] = n
	o.pin(n)
	return nil
}

// emitProgramOrder links the node to its processor's previous operation.
func (o *Observer) emitProgramOrder(n *onode) error {
	if prev, ok := o.lastOp[n.op.Proc]; ok {
		if err := o.send(descriptor.Edge{From: prev.id, To: n.id, Label: descriptor.PO}); err != nil {
			return err
		}
		o.unpin(prev)
	}
	o.lastOp[n.op.Proc] = n
	o.pin(n)
	return nil
}

// applyUpdate emits the ST-order edges and first-store consequences the
// generator determined: the edges themselves, the forced edges they arm,
// and the forced edges owed by pending ⊥-loads.
func (o *Observer) applyUpdate(u Update) error {
	for _, e := range u.Edges {
		from, okF := o.nodes[e.From]
		to, okT := o.nodes[e.To]
		if !okF || !okT {
			return o.fail(fmt.Errorf("observer: ST-order generator referenced a retired node (%d→%d)", e.From, e.To))
		}
		if from.stSucc != nil {
			return o.fail(fmt.Errorf("observer: ST-order generator ordered %s twice", from.op))
		}
		if err := o.send(descriptor.Edge{From: from.id, To: to.id, Label: descriptor.STo}); err != nil {
			return err
		}
		from.stSucc = to
		to.stIn = true
		// Late inheritors of `from` (possible while its value still sits in
		// some location) will need forced edges to `to`: keep `to`
		// addressable while `from` is inh-active.
		if from.locRefs > 0 {
			from.succPinned = true
			o.pin(to)
		}
		// Pending inheritors owe their forced edges now, emitted in
		// processor order so the stream is a deterministic function of the
		// run.
		procs := make([]int, 0, len(from.pending))
		for p := range from.pending {
			procs = append(procs, int(p))
		}
		sort.Ints(procs)
		for _, p := range procs {
			load := from.pending[trace.ProcID(p)]
			if err := o.send(descriptor.Edge{From: load.id, To: to.id, Label: descriptor.Forced}); err != nil {
				return err
			}
			o.unpin(load)
			delete(from.pending, trace.ProcID(p))
		}
		// The store is ordered: release the generator's pin.
		o.unpin(from)
	}
	for _, f := range u.Firsts {
		n, ok := o.nodes[f.Node]
		if !ok {
			return o.fail(fmt.Errorf("observer: first store of block B%d is a retired node", f.Block))
		}
		if _, dup := o.firstSt[f.Block]; dup {
			return o.fail(fmt.Errorf("observer: first store of block B%d reported twice", f.Block))
		}
		o.firstSt[f.Block] = n
		o.pin(n) // late ⊥-loads may still need a forced edge to it
		keys := make([][2]int, 0, len(o.bottoms))
		for key := range o.bottoms {
			if trace.BlockID(key[1]) == f.Block {
				keys = append(keys, key)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, key := range keys {
			load := o.bottoms[key]
			if err := o.send(descriptor.Edge{From: load.id, To: n.id, Label: descriptor.Forced}); err != nil {
				return err
			}
			o.unpin(load)
			delete(o.bottoms, key)
		}
	}
	return nil
}

// Finish completes the run: the generator resolves any stores it has not
// yet serialized, and the induced edges are emitted.
func (o *Observer) Finish() error {
	if o.err != nil {
		return o.err
	}
	return o.applyUpdate(o.gen.Finish())
}

// ObserveRun replays a recorded run through a fresh observer, returning
// the collected descriptor stream.
func ObserveRun(run *protocol.Run, gen STOrderGenerator, cfg Config) (descriptor.Stream, *Observer, error) {
	var stream descriptor.Stream
	o := New(run.Protocol, gen, cfg, func(sym descriptor.Symbol) error {
		stream = append(stream, sym)
		return nil
	})
	for _, step := range run.Steps {
		if err := o.Step(step.Transition); err != nil {
			return stream, o, err
		}
	}
	if err := o.Finish(); err != nil {
		return stream, o, err
	}
	return stream, o, nil
}
