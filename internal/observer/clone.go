package observer

import (
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

// CloneableGenerator is an STOrderGenerator that supports deep copying;
// required when the observer itself is cloned (as the model checker does
// at every branch point).
type CloneableGenerator interface {
	STOrderGenerator
	Clone() STOrderGenerator
}

// Clone returns a deep copy of the RealTime generator.
func (g *RealTime) Clone() STOrderGenerator {
	out := NewRealTime()
	for b, h := range g.last {
		out.last[b] = h
	}
	return out
}

// Clone returns a deep copy of the observer whose emitted symbols go to
// the given sink. The generator must implement CloneableGenerator.
func (o *Observer) Clone(emit func(descriptor.Symbol) error) *Observer {
	cg, ok := o.gen.(CloneableGenerator)
	if !ok {
		panic("observer: generator does not support Clone")
	}
	out := &Observer{
		proto:      o.proto,
		gen:        cg.Clone(),
		emit:       emit,
		poolSize:   o.poolSize,
		freeIDs:    append([]int(nil), o.freeIDs...),
		nodes:      make(map[NodeHandle]*onode, len(o.nodes)),
		nextHandle: o.nextHandle,
		locToNode:  make([]*onode, len(o.locToNode)),
		lastOp:     make(map[trace.ProcID]*onode, len(o.lastOp)),
		firstSt:    make(map[trace.BlockID]*onode, len(o.firstSt)),
		bottoms:    make(map[[2]int]*onode, len(o.bottoms)),
		traceLen:   o.traceLen,
		stats:      o.stats,
		err:        o.err,
	}
	nodeMap := make(map[*onode]*onode, len(o.nodes))
	var copyNode func(n *onode) *onode
	copyNode = func(n *onode) *onode {
		if n == nil {
			return nil
		}
		if cp, ok := nodeMap[n]; ok {
			return cp
		}
		cp := &onode{
			h: n.h, op: n.op, id: n.id,
			locRefs: n.locRefs, pins: n.pins,
			stIn: n.stIn, succPinned: n.succPinned,
		}
		nodeMap[n] = cp
		cp.stSucc = copyNode(n.stSucc)
		if n.pending != nil {
			cp.pending = make(map[trace.ProcID]*onode, len(n.pending))
			for p, l := range n.pending {
				cp.pending[p] = copyNode(l)
			}
		}
		return cp
	}
	for h, n := range o.nodes {
		out.nodes[h] = copyNode(n)
	}
	for i, n := range o.locToNode {
		out.locToNode[i] = copyNode(n)
	}
	for p, n := range o.lastOp {
		out.lastOp[p] = copyNode(n)
	}
	for b, n := range o.firstSt {
		out.firstSt[b] = copyNode(n)
	}
	for k, n := range o.bottoms {
		out.bottoms[k] = copyNode(n)
	}
	return out
}
