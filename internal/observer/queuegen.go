package observer

import (
	"encoding/binary"
	"sort"

	"scverify/internal/protocol"
	"scverify/internal/trace"
)

// QueueGenerator is the reusable form of the Section 4.2 non-trivial
// ST-order generator: it serves any protocol whose stores enter a
// per-processor FIFO at ST time and serialize later, when a named internal
// event (lazy caching's "memory-write", the store buffer's "Drain") pops
// the processor's oldest pending store. Stores still queued at the end of
// the run are serialized by a deterministic completion — legal because a
// queued store can have no inheritors yet.
type QueueGenerator struct {
	event   string
	procs   int
	pending map[trace.ProcID][]NodeHandle
	last    map[trace.BlockID]NodeHandle
	blocks  map[NodeHandle]trace.BlockID
}

// NewQueueGenerator returns a generator that serializes stores on the
// named internal event, whose first argument must be the issuing
// processor.
func NewQueueGenerator(event string, procs int) *QueueGenerator {
	return &QueueGenerator{
		event:   event,
		procs:   procs,
		pending: make(map[trace.ProcID][]NodeHandle),
		last:    make(map[trace.BlockID]NodeHandle),
		blocks:  make(map[NodeHandle]trace.BlockID),
	}
}

// OnStore queues the store for later serialization.
func (g *QueueGenerator) OnStore(h NodeHandle, op trace.Op) Update {
	g.pending[op.Proc] = append(g.pending[op.Proc], h)
	g.blocks[h] = op.Block
	return Update{}
}

// OnInternal serializes the issuing processor's oldest pending store when
// the configured event fires.
func (g *QueueGenerator) OnInternal(a protocol.Action) Update {
	if a.Name != g.event || len(a.Args) < 1 {
		return Update{}
	}
	return g.serializeHead(trace.ProcID(a.Args[0]))
}

func (g *QueueGenerator) serializeHead(p trace.ProcID) Update {
	q := g.pending[p]
	if len(q) == 0 {
		return Update{}
	}
	h := q[0]
	g.pending[p] = q[1:]
	b := g.blocks[h]
	delete(g.blocks, h)
	var u Update
	if prev, ok := g.last[b]; ok {
		u.Edges = append(u.Edges, STEdge{From: prev, To: h})
	} else {
		u.Firsts = append(u.Firsts, FirstStore{Block: b, Node: h})
	}
	g.last[b] = h
	return u
}

// Finish serializes all still-pending stores, processors in index order.
func (g *QueueGenerator) Finish() Update {
	var u Update
	for p := trace.ProcID(1); int(p) <= g.procs; p++ {
		for len(g.pending[p]) > 0 {
			step := g.serializeHead(p)
			u.Edges = append(u.Edges, step.Edges...)
			u.Firsts = append(u.Firsts, step.Firsts...)
		}
	}
	return u
}

// Idle implements IdleGenerator.
func (g *QueueGenerator) Idle() bool {
	for _, q := range g.pending {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// Clone implements CloneableGenerator.
func (g *QueueGenerator) Clone() STOrderGenerator {
	out := NewQueueGenerator(g.event, g.procs)
	for p, q := range g.pending {
		out.pending[p] = append([]NodeHandle(nil), q...)
	}
	for b, h := range g.last {
		out.last[b] = h
	}
	for h, b := range g.blocks {
		out.blocks[h] = b
	}
	return out
}

// StateKey encodes the generator state with raw handles.
func (g *QueueGenerator) StateKey() []byte {
	return g.StateKeyResolved(func(h NodeHandle) int { return int(h) })
}

// StateKeyResolved implements ResolvableGenerator.
func (g *QueueGenerator) StateKeyResolved(resolve func(NodeHandle) int) []byte {
	var key []byte
	for p := trace.ProcID(1); int(p) <= g.procs; p++ {
		q := g.pending[p]
		key = binary.AppendUvarint(key, uint64(len(q)))
		for _, h := range q {
			key = binary.AppendUvarint(key, uint64(resolve(h)))
			key = binary.AppendUvarint(key, uint64(g.blocks[h]))
		}
	}
	blocks := make([]int, 0, len(g.last))
	for b := range g.last {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		key = binary.AppendUvarint(key, uint64(b))
		key = binary.AppendUvarint(key, uint64(resolve(g.last[trace.BlockID(b)])))
	}
	return key
}

// Roles implements RoleGenerator.
func (g *QueueGenerator) Roles(visit func(NodeHandle)) {
	for p := trace.ProcID(1); int(p) <= g.procs; p++ {
		for _, h := range g.pending[p] {
			visit(h)
		}
	}
	blocks := make([]int, 0, len(g.last))
	for b := range g.last {
		blocks = append(blocks, int(b))
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		visit(g.last[trace.BlockID(b)])
	}
}
