// Package conformance cross-validates every registered protocol against
// the method's global invariants: observer streams are well-formed
// k-graph descriptors within the ID pool; SC protocols are never rejected;
// accepted runs always have genuinely SC traces (checked by the exact
// search); cloned pipeline components are truly independent of their
// originals; and the model checker's results are stable across worker
// counts. It is the repository's method-level safety net — any new
// protocol added to the registry is automatically subjected to all of it.
package conformance

import (
	"testing"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/gammalint"
	"scverify/internal/mc"
	"scverify/internal/observer"
	"scverify/internal/protocol"
	"scverify/internal/registry"
	"scverify/internal/sctest"
	"scverify/internal/trace"
)

var conformanceParams = trace.Params{Procs: 2, Blocks: 2, Values: 2}

func allTargets(t testing.TB) map[string]registry.Target {
	t.Helper()
	out := make(map[string]registry.Target)
	for _, name := range registry.Names() {
		tgt, err := registry.Build(name, registry.Options{Params: conformanceParams, QueueCap: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tgt
	}
	return out
}

// TestRegistryGammaLintClean requires every registered protocol — the SC
// ones and the deliberately broken ones alike — to pass Γ-lint with zero
// findings. Coherence bugs break SC, not Γ-membership: their tracking
// labels still describe what the broken machine actually does, so a
// finding here means a protocol was added whose labels, keys, enumeration
// or bandwidth declaration the method's soundness argument does not cover.
func TestRegistryGammaLintClean(t *testing.T) {
	for name, tgt := range allTargets(t) {
		rep := gammalint.Lint(tgt.Protocol, gammalint.Options{
			MaxStates:     4000,
			PoolSize:      tgt.PoolSize,
			Generator:     tgt.Generator,
			BandwidthRuns: 5,
		})
		t.Log(rep)
		for _, f := range rep.Findings {
			t.Errorf("%s: %s", name, f)
		}
	}
}

// observe runs one random run through a fresh observer, returning the
// stream even when the observer errors.
func observe(tgt registry.Target, steps int, seed int64) (descriptor.Stream, *observer.Observer, *protocol.Run, error) {
	run := protocol.RandomRun(tgt.Protocol, steps, seed)
	stream, obs, err := observer.ObserveRun(run, tgt.Generator(), observer.Config{PoolSize: tgt.PoolSize})
	return stream, obs, run, err
}

func TestStreamsAreWellFormedDescriptors(t *testing.T) {
	for name, tgt := range allTargets(t) {
		for seed := int64(0); seed < 10; seed++ {
			stream, obs, run, err := observe(tgt, 30, seed)
			if err != nil {
				t.Fatalf("%s seed %d: observer error: %v\nrun: %s", name, seed, err, run)
			}
			if err := stream.Validate(obs.K(), true); err != nil {
				t.Fatalf("%s seed %d: malformed stream: %v", name, seed, err)
			}
			if got := stream.MaxID(); got > obs.K()+1 {
				t.Fatalf("%s seed %d: ID %d beyond pool %d", name, seed, got, obs.K()+1)
			}
		}
	}
}

func TestStreamTraceMatchesRunTrace(t *testing.T) {
	for name, tgt := range allTargets(t) {
		stream, _, run, err := observe(tgt, 40, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := stream.Trace().String(), run.Trace.String(); got != want {
			t.Fatalf("%s: observer is not non-interfering:\n stream: %s\n run:    %s", name, got, want)
		}
	}
}

func TestSCProtocolsNeverRejected(t *testing.T) {
	for name, tgt := range allTargets(t) {
		if !tgt.ExpectSC {
			continue
		}
		res := sctest.Campaign(tgt, sctest.Config{Runs: 40, Steps: 30, Seed: 5, Exact: true})
		if res.Rejected != 0 {
			t.Errorf("%s: %d rejections, first: %v on %s", name, res.Rejected, res.FirstCause, res.FirstRejected)
		}
		if res.SoundnessBreaks != 0 {
			t.Errorf("%s: soundness break", name)
		}
	}
}

func TestAcceptedRunsHaveSCTraces(t *testing.T) {
	// Method soundness across ALL protocols, including broken ones: if the
	// checker accepts a run, its trace must have a serial reordering.
	for name, tgt := range allTargets(t) {
		res := sctest.Campaign(tgt, sctest.Config{Runs: 60, Steps: 14, Seed: 11, Exact: true})
		if res.SoundnessBreaks != 0 {
			t.Errorf("%s: %d accepted runs with non-SC traces", name, res.SoundnessBreaks)
		}
	}
}

func TestStreamsDecodeToConstraintGraphs(t *testing.T) {
	// For accepted runs, the decoded graph must satisfy the offline
	// reference checks too (streaming and offline verdicts agree).
	for name, tgt := range allTargets(t) {
		if !tgt.ExpectSC {
			continue
		}
		stream, obs, _, err := observe(tgt, 30, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := checker.Check(stream, obs.K()); err != nil {
			t.Fatalf("%s: stream rejected: %v", name, err)
		}
		g, err := descriptor.Decode(stream).ToConstraintGraph()
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if err := g.CheckConstraints(); err != nil {
			t.Fatalf("%s: offline constraints: %v", name, err)
		}
		if !g.IsAcyclic() {
			t.Fatalf("%s: offline graph cyclic", name)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	// Step a cloned pipeline aggressively; the original's state keys must
	// not move.
	tgt := allTargets(t)["msi"]
	chk := checker.New(0)
	obs := observer.New(tgt.Protocol, tgt.Generator(), observer.Config{}, nil)
	chk = checker.New(obs.K())
	obs = observer.New(tgt.Protocol, tgt.Generator(), observer.Config{}, chk.Step)

	run := protocol.RandomRun(tgt.Protocol, 20, 13)
	half := len(run.Steps) / 2
	for _, step := range run.Steps[:half] {
		if err := obs.Step(step.Transition); err != nil {
			t.Fatal(err)
		}
	}
	obsKey := string(obs.StateKey())
	chkKey := string(chk.StateKey())

	cchk := chk.Clone()
	cobs := obs.Clone(cchk.Step)
	for _, step := range run.Steps[half:] {
		if err := cobs.Step(step.Transition); err != nil {
			t.Fatal(err)
		}
	}
	if err := cobs.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := cchk.Finish(); err != nil {
		t.Fatal(err)
	}
	if string(obs.StateKey()) != obsKey {
		t.Error("stepping the clone mutated the original observer")
	}
	if string(chk.StateKey()) != chkKey {
		t.Error("finishing the clone mutated the original checker")
	}
	// And the original still works.
	for _, step := range run.Steps[half:] {
		if err := obs.Step(step.Transition); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelCheckerWorkerInvariance(t *testing.T) {
	tgt := allTargets(t)["writethrough"]
	small, err := registry.Build("writethrough", registry.Options{Params: trace.Params{Procs: 2, Blocks: 1, Values: 1}})
	if err != nil {
		t.Fatal(err)
	}
	_ = tgt
	a := mc.Verify(small.Protocol, mc.Options{Workers: 1, MaxDepth: 7, Generator: small.Generator})
	b := mc.Verify(small.Protocol, mc.Options{Workers: 8, MaxDepth: 7, Generator: small.Generator})
	if a.States != b.States || a.Transitions != b.Transitions || a.Verdict != b.Verdict {
		t.Errorf("worker counts disagree: %s vs %s", a, b)
	}
}

func TestDeterministicStreams(t *testing.T) {
	// The observer is a deterministic automaton: identical runs produce
	// byte-identical streams.
	for name, tgt := range allTargets(t) {
		s1, _, _, err1 := observe(tgt, 25, 17)
		s2, _, _, err2 := observe(tgt, 25, 17)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: determinism break in errors: %v vs %v", name, err1, err2)
		}
		if string(descriptor.Marshal(s1)) != string(descriptor.Marshal(s2)) {
			t.Fatalf("%s: identical runs produced different streams", name)
		}
	}
}

func TestWireRoundTripAllProtocols(t *testing.T) {
	for name, tgt := range allTargets(t) {
		stream, _, _, err := observe(tgt, 30, 19)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data := descriptor.Marshal(stream)
		back, err := descriptor.Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if string(descriptor.Marshal(back)) != string(data) {
			t.Fatalf("%s: wire round trip not idempotent", name)
		}
	}
}
