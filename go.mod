module scverify

go 1.22
