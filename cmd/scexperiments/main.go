// Command scexperiments regenerates the figures and tables of Condon & Hu
// as reproduced by this repository (see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	scexperiments            # run everything
//	scexperiments -exp fig1  # one experiment
//	scexperiments -list
package main

import (
	"flag"
	"fmt"
	"os"

	"scverify/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id, or 'all'")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(" ", id)
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := experiments.Run(id, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
	}
}
