package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/scmc"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// The benchmark measures distributed exploration scaling on loopback
// backends. Real deployments win because expansion work (successor
// generation, observer cloning, finish checks) spreads across machines;
// on one host that work shares the same cores, so raw loopback shards
// cannot show the win. Each backend therefore runs a single explore
// worker with a fixed per-expansion delay — the standard simulated-
// latency methodology (the same one bench-grid uses): the delay stands
// in for each node's per-state work, and the measured quantity is how
// well the fabric overlaps it across shards. Protocol, parameters, and
// delay are pinned so BENCH_scverify.json is comparable run to run.
const (
	benchProtocol  = "serial"
	benchStepDelay = time.Millisecond
)

var benchParams = trace.Params{Procs: 2, Blocks: 1, Values: 1}

// benchArm is one grid configuration's measurement.
type benchArm struct {
	Backends       int     `json:"backends"`
	States         int64   `json:"states"`
	Transitions    int64   `json:"transitions"`
	Forwards       int64   `json:"forwards"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	StatesPerSec   float64 `json:"states_per_sec"`
	Speedup        float64 `json:"speedup_vs_1"`
}

// benchReport is the BENCH_scverify.json schema.
type benchReport struct {
	Bench            string     `json:"bench"`
	Protocol         string     `json:"protocol"`
	Params           string     `json:"params"`
	StepDelayMicros  int64      `json:"step_delay_micros"`
	SingleNodeStates int64      `json:"single_node_states"`
	Arms             []benchArm `json:"arms"`
	Scaling4x        float64    `json:"scaling_states_per_sec_4_vs_1"`
}

// benchBackends starts n in-process explore backends configured for the
// simulated-latency methodology and returns their addresses plus a
// shutdown func.
func benchBackends(n int) ([]string, func(), error) {
	addrs := make([]string, 0, n)
	var stops []func()
	stop := func() {
		for _, f := range stops {
			f()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := scserve.New(scserve.Config{
			ExploreWorkers:   1,
			ExploreStepDelay: benchStepDelay,
		})
		go srv.Serve(ln)
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, stop, nil
}

// benchMain runs the scaling benchmark: a single-node reference count,
// then grid arms at 1, 2, and 4 backends. Every arm must reproduce the
// reference state count exactly; the 4-backend arm must deliver at least
// twice the 1-backend throughput, the gate the fabric's existence is
// justified by.
func benchMain(out string, stdout, stderr io.Writer) int {
	tgt, err := registry.Build(benchProtocol, registry.Options{Params: benchParams})
	if err != nil {
		fmt.Fprintf(stderr, "scverify bench: %v\n", err)
		return 2
	}
	ref := mc.Verify(tgt.Protocol, mc.Options{PoolSize: tgt.PoolSize, Generator: tgt.Generator})
	if ref.Verdict != mc.Verified {
		fmt.Fprintf(stderr, "scverify bench: single-node reference not verified: %s\n", ref)
		return 2
	}
	fmt.Fprintf(stdout, "scverify bench: %s at %s — %d states, per-expansion delay %s\n",
		benchProtocol, benchParams, ref.States, benchStepDelay)

	rep := benchReport{
		Bench:            "scverify",
		Protocol:         benchProtocol,
		Params:           benchParams.String(),
		StepDelayMicros:  benchStepDelay.Microseconds(),
		SingleNodeStates: int64(ref.States),
	}

	for _, n := range []int{1, 2, 4} {
		addrs, stop, err := benchBackends(n)
		if err != nil {
			fmt.Fprintf(stderr, "scverify bench: %v\n", err)
			return 2
		}
		res := scmc.Verify(context.Background(), addrs, scmc.Options{
			Protocol:     benchProtocol,
			Params:       benchParams,
			StallTimeout: 2 * time.Minute,
		})
		stop()
		if res.Verdict != mc.Verified {
			fmt.Fprintf(stderr, "scverify bench: %d-backend arm: %s\n", n, res)
			return 2
		}
		if res.States != int64(ref.States) {
			fmt.Fprintf(stderr, "scverify bench: %d-backend arm counted %d states, single-node %d — shard soundness broken\n",
				n, res.States, ref.States)
			return 2
		}
		arm := benchArm{
			Backends:       n,
			States:         res.States,
			Transitions:    res.Transitions,
			Forwards:       res.Forwards,
			ElapsedSeconds: res.Elapsed.Seconds(),
			StatesPerSec:   float64(res.States) / res.Elapsed.Seconds(),
		}
		rep.Arms = append(rep.Arms, arm)
		fmt.Fprintf(stdout, "scverify bench: %d backends: %d states in %.2fs — %.0f states/s\n",
			n, arm.States, arm.ElapsedSeconds, arm.StatesPerSec)
	}
	base := rep.Arms[0].StatesPerSec
	for i := range rep.Arms {
		rep.Arms[i].Speedup = rep.Arms[i].StatesPerSec / base
	}
	rep.Scaling4x = rep.Arms[2].Speedup

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "scverify bench: %v\n", err)
		return 2
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintf(stderr, "scverify bench: write %s: %v\n", out, err)
		return 2
	}
	fmt.Fprintf(stdout, "scverify bench: 4-backend scaling %.2fx (%s)\n", rep.Scaling4x, out)
	if rep.Scaling4x < 2.0 {
		fmt.Fprintf(stderr, "scverify bench: scaling gate failed: %.2fx < 2.0x\n", rep.Scaling4x)
		return 1
	}
	return 0
}
