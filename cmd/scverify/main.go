// Command scverify exhaustively verifies that a protocol is sequentially
// consistent using the observer/checker method of Condon & Hu: it explores
// the full product of the protocol, its automatically generated witness
// observer, and the protocol-independent SC checker. A "verified" verdict
// means every run's constraint graph is acyclic (the protocol is SC for
// the given parameters); a "violated" verdict comes with a concrete
// counterexample run.
//
// Usage:
//
//	scverify -protocol msi -p 2 -b 1 -v 1
//	scverify -protocol storebuffer -p 2 -b 2 -v 1 -depth 8
//	scverify -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/trace"
	"scverify/internal/witness"
)

func main() {
	var (
		name     = flag.String("protocol", "msi", "protocol to verify (see -list)")
		procs    = flag.Int("p", 2, "number of processors")
		blocks   = flag.Int("b", 1, "number of memory blocks")
		values   = flag.Int("v", 1, "number of data values")
		qcap     = flag.Int("qcap", 1, "queue capacity (store buffer / lazy caching)")
		depth    = flag.Int("depth", 0, "BFS depth bound (0 = unbounded)")
		states   = flag.Int("states", 0, "state cap (0 = default)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "print per-level progress")
		list     = flag.Bool("list", false, "list protocols and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range registry.Names() {
			note, _ := registry.Describe(n)
			fmt.Printf("  %-20s %s\n", n, note)
		}
		return
	}

	params := trace.Params{Procs: *procs, Blocks: *blocks, Values: *values}
	tgt, err := registry.Build(*name, registry.Options{Params: params, QueueCap: *qcap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := mc.Options{
		Workers:   *workers,
		MaxStates: *states,
		MaxDepth:  *depth,
		PoolSize:  tgt.PoolSize,
		Generator: tgt.Generator,
	}
	if *progress {
		opts.Progress = func(d, s, f int) {
			fmt.Fprintf(os.Stderr, "depth %d: %d states, frontier %d\n", d, s, f)
		}
	}

	fmt.Printf("verifying %s (%s) at %s...\n", tgt.Protocol.Name(), tgt.Note, params)
	res := mc.Verify(tgt.Protocol, opts)
	fmt.Println(res)

	switch res.Verdict {
	case mc.Violated:
		run, err := mc.Replay(tgt.Protocol, res.Counterexample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "counterexample replay failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("counterexample (%d steps):\n  %s\n", len(run.Steps), run)
		fmt.Printf("trace: %s\n", run.Trace)
		// The counterexample was found with witness mode off (mc clones the
		// checker at every branch); replay it through the witness pipeline
		// for a minimized, human-readable explanation.
		if w, werr := witness.FromRun(run, tgt, witness.Explain()); werr == nil && w != nil {
			fmt.Print(w.Render())
		} else {
			fmt.Printf("cause: %v\n", res.Err)
		}
		os.Exit(1)
	case mc.Incomplete:
		fmt.Printf("exploration incomplete after %s; raise -depth/-states to finish\n",
			res.Elapsed.Round(time.Millisecond))
		os.Exit(3)
	}
}
