// Command scverify exhaustively verifies that a protocol is sequentially
// consistent using the observer/checker method of Condon & Hu: it explores
// the full product of the protocol, its automatically generated witness
// observer, and the protocol-independent SC checker. A "verified" verdict
// means every run's constraint graph is acyclic (the protocol is SC for
// the given parameters); a "violated" verdict comes with a concrete
// counterexample run.
//
// With -grid, the exploration is distributed: each comma-separated scserve
// backend owns one rendezvous-hashed shard of the visited set, and the
// aggregate state capacity is shards × -states. The verdicts and state
// counts are identical to a single-node run; a backend lost mid-run
// degrades the verdict to incomplete, never to a wrong verified.
//
// Usage:
//
//	scverify -protocol msi -p 2 -b 1 -v 1
//	scverify -protocol storebuffer -p 2 -b 2 -v 1 -depth 8
//	scverify -protocol msi -grid host1:7541,host2:7541,host3:7541
//	scverify -bench -bench-out BENCH_scverify.json
//	scverify -list
//
// Exit status: 0 verified, 1 violated, 2 usage error, 3 incomplete.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"scverify/internal/mc"
	"scverify/internal/registry"
	"scverify/internal/scmc"
	"scverify/internal/trace"
	"scverify/internal/witness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: parse flags, verify
// locally or across a grid, map the verdict to the exit-code contract.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("protocol", "msi", "protocol to verify (see -list)")
		procs    = fs.Int("p", 2, "number of processors")
		blocks   = fs.Int("b", 1, "number of memory blocks")
		values   = fs.Int("v", 1, "number of data values")
		qcap     = fs.Int("qcap", 1, "queue capacity (store buffer / lazy caching)")
		depth    = fs.Int("depth", 0, "exploration depth bound (0 = unbounded)")
		states   = fs.Int("states", 0, "state cap — per shard under -grid (0 = default)")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		exact    = fs.Bool("exact", false, "store exact state keys instead of 64-bit fingerprints")
		audit    = fs.Bool("audit", false, "fingerprint visited set, but keep keys and count collisions")
		progress = fs.Bool("progress", false, "print exploration progress")
		grid     = fs.String("grid", "", "comma-separated scserve backends for distributed exploration")
		stall    = fs.Duration("stall", 2*time.Minute, "grid: abort when no backend activity for this long")
		list     = fs.Bool("list", false, "list protocols and exit")

		bench    = fs.Bool("bench", false, "run the self-contained distributed scaling benchmark")
		benchOut = fs.String("bench-out", "BENCH_scverify.json", "benchmark: JSON output file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, n := range registry.Names() {
			note, _ := registry.Describe(n)
			fmt.Fprintf(stdout, "  %-20s %s\n", n, note)
		}
		return 0
	}
	if *bench {
		return benchMain(*benchOut, stdout, stderr)
	}

	params := trace.Params{Procs: *procs, Blocks: *blocks, Values: *values}
	tgt, err := registry.Build(*name, registry.Options{Params: params, QueueCap: *qcap})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *grid != "" {
		addrs := splitAddrs(*grid)
		if len(addrs) == 0 {
			fmt.Fprintln(stderr, "scverify: -grid needs at least one backend address")
			return 2
		}
		return gridVerify(tgt, *name, params, addrs, scmc.Options{
			Protocol:          *name,
			Params:            params,
			QueueCap:          *qcap,
			MaxStatesPerShard: *states,
			MaxDepth:          *depth,
			Exact:             *exact,
			Audit:             *audit,
			StallTimeout:      *stall,
		}, *progress, stdout, stderr)
	}

	opts := mc.Options{
		Workers:         *workers,
		MaxStates:       *states,
		MaxDepth:        *depth,
		PoolSize:        tgt.PoolSize,
		Generator:       tgt.Generator,
		ExactKeys:       *exact,
		AuditCollisions: *audit,
	}
	if *progress {
		opts.Progress = func(d, s, f int) {
			fmt.Fprintf(stderr, "depth %d: %d states, frontier %d\n", d, s, f)
		}
	}

	fmt.Fprintf(stdout, "verifying %s (%s) at %s...\n", tgt.Protocol.Name(), tgt.Note, params)
	res := mc.Verify(tgt.Protocol, opts)
	fmt.Fprintln(stdout, res)

	switch res.Verdict {
	case mc.Violated:
		reportViolation(tgt, res.Counterexample, res.Err, stdout, stderr)
		return 1
	case mc.Incomplete:
		fmt.Fprintf(stdout, "exploration incomplete after %s; raise -depth/-states to finish\n",
			res.Elapsed.Round(time.Millisecond))
		return 3
	}
	return 0
}

// gridVerify runs the distributed exploration and maps its result onto
// the same exit-code contract as the local path.
func gridVerify(tgt registry.Target, name string, params trace.Params, addrs []string, opts scmc.Options, progress bool, stdout, stderr io.Writer) int {
	if progress {
		opts.Progress = func(shards []scmc.ShardStats) {
			var line strings.Builder
			var total int64
			for i, sh := range shards {
				if i > 0 {
					line.WriteString("  ")
				}
				fmt.Fprintf(&line, "shard %d: %d states (in %d / out %d)", i, sh.States, sh.ItemsIn, sh.ItemsOut)
				total += sh.States
			}
			fmt.Fprintf(stderr, "%d states | %s\n", total, line.String())
		}
	}
	fmt.Fprintf(stdout, "verifying %s (%s) at %s across %d backends...\n", tgt.Protocol.Name(), tgt.Note, params, len(addrs))
	res := scmc.Verify(context.Background(), addrs, opts)
	fmt.Fprintln(stdout, res)
	for i, sh := range res.Shards {
		fmt.Fprintf(stdout, "  shard %d (%s): %d states, %d transitions, %d in / %d out\n",
			i, sh.Addr, sh.States, sh.Transitions, sh.ItemsIn, sh.ItemsOut)
	}

	switch res.Verdict {
	case mc.Violated:
		reportViolation(tgt, res.Counterexample, res.Err, stdout, stderr)
		return 1
	case mc.Incomplete:
		if res.Err != nil {
			fmt.Fprintf(stderr, "scverify: %v\n", res.Err)
		}
		fmt.Fprintf(stdout, "exploration incomplete after %s\n", res.Elapsed.Round(time.Millisecond))
		return 3
	}
	return 0
}

// reportViolation replays a counterexample path on the local protocol and
// renders the witness explanation. The grid never ships states back — a
// violation travels as a transition-index path, replayed here.
func reportViolation(tgt registry.Target, path []int, cause error, stdout, stderr io.Writer) {
	run, err := mc.Replay(tgt.Protocol, path)
	if err != nil {
		fmt.Fprintf(stderr, "counterexample replay failed: %v\n", err)
		return
	}
	fmt.Fprintf(stdout, "counterexample (%d steps):\n  %s\n", len(run.Steps), run)
	fmt.Fprintf(stdout, "trace: %s\n", run.Trace)
	// The counterexample was found with witness mode off (mc clones the
	// checker at every branch); replay it through the witness pipeline
	// for a minimized, human-readable explanation.
	if w, werr := witness.FromRun(run, tgt, witness.Explain()); werr == nil && w != nil {
		fmt.Fprint(stdout, w.Render())
	} else {
		fmt.Fprintf(stdout, "cause: %v\n", cause)
	}
}

// splitAddrs splits a comma-separated backend list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
