package main

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"scverify/internal/scserve"
)

// startServer runs an in-process explore backend for the grid exit-code
// tests.
func startServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := scserve.New(scserve.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestScverifyExitCodes pins the documented contract for both the local
// and the distributed checker: 0 = verified, 1 = violated, 2 = the run
// never started (usage error), 3 = incomplete — never conflated. The
// same flag set must produce the same code whether or not -grid is set.
func TestScverifyExitCodes(t *testing.T) {
	grid := startServer(t) + "," + startServer(t)

	cases := []struct {
		name string
		args []string
		want int
	}{
		// 0: verified.
		{"local-verified", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2"}, 0},
		{"grid-verified", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-grid", grid}, 0},
		{"grid-verified-exact", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-exact", "-grid", grid}, 0},

		// 1: violated (the buggy write-through config the protocol suite pins).
		{"local-violated", []string{"-protocol", "writethrough-no-invalidate", "-p", "2", "-b", "2", "-v", "1", "-depth", "10"}, 1},
		{"grid-violated", []string{"-protocol", "writethrough-no-invalidate", "-p", "2", "-b", "2", "-v", "1", "-depth", "10", "-grid", grid}, 1},

		// 2: usage — the run never started.
		{"local-unknown-protocol", []string{"-protocol", "no-such-protocol"}, 2},
		{"grid-unknown-protocol", []string{"-protocol", "no-such-protocol", "-grid", grid}, 2},
		{"bad-flag", []string{"-no-such-flag"}, 2},
		{"grid-empty", []string{"-protocol", "serial", "-grid", " , "}, 2},

		// 3: incomplete — the run started but did not exhaust the space.
		{"local-capped", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-states", "10"}, 3},
		{"local-depth-capped", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-depth", "3"}, 3},
		{"grid-capped", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-states", "10", "-grid", grid}, 3},
		{"grid-depth-capped", []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-depth", "3", "-grid", grid}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args, io.Discard, io.Discard); got != c.want {
				t.Errorf("scverify %s: exit %d, want %d", strings.Join(c.args, " "), got, c.want)
			}
		})
	}

	// A dead backend is a run that could not complete, not a verdict and
	// not a usage error.
	t.Run("grid-dead-backend", func(t *testing.T) {
		args := []string{"-protocol", "serial", "-p", "1", "-b", "1", "-v", "2", "-grid", deadAddr(t)}
		if got := run(args, io.Discard, io.Discard); got != 3 {
			t.Errorf("scverify with dead backend: exit %d, want 3", got)
		}
	})

	// -list is informational and exits clean.
	t.Run("list", func(t *testing.T) {
		var sb strings.Builder
		if got := run([]string{"-list"}, &sb, io.Discard); got != 0 {
			t.Errorf("-list: exit %d, want 0", got)
		}
		if !strings.Contains(sb.String(), "serial") {
			t.Errorf("-list output missing protocols:\n%s", sb.String())
		}
	})
}
