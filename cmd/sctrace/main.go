// Command sctrace decides sequential consistency for a single memory
// trace given on the command line, reporting the exact verdict, a witness
// reordering, the canonical constraint graph's bandwidth, the checker's
// verdict on its descriptor encoding, and the minimum bounded-reorder
// window (the Henzinger-style baseline of Section 1.1).
//
// Trace syntax: whitespace-separated operations of the form
//
//	ST:P:B:V   LD:P:B:V   (V may be 0 for ⊥)
//
// Example:
//
//	sctrace ST:1:1:1 LD:2:1:0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scverify/internal/boundedreorder"
	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/graph"
	"scverify/internal/trace"
)

func parseOp(tok string) (trace.Op, error) {
	parts := strings.Split(tok, ":")
	if len(parts) != 4 {
		return trace.Op{}, fmt.Errorf("want KIND:P:B:V, got %q", tok)
	}
	nums := make([]int, 3)
	for i, p := range parts[1:] {
		n, err := strconv.Atoi(p)
		if err != nil {
			return trace.Op{}, fmt.Errorf("bad number in %q: %v", tok, err)
		}
		nums[i] = n
	}
	op := trace.Op{
		Proc:  trace.ProcID(nums[0]),
		Block: trace.BlockID(nums[1]),
		Value: trace.Value(nums[2]),
	}
	switch strings.ToUpper(parts[0]) {
	case "ST":
		op.Kind = trace.Store
	case "LD":
		op.Kind = trace.Load
	default:
		return trace.Op{}, fmt.Errorf("unknown kind %q (want ST or LD)", parts[0])
	}
	return op, nil
}

func main() {
	window := flag.Bool("window", true, "also compute the minimum bounded-reorder window")
	dump := flag.String("dump", "", "write the wire-format descriptor stream to this file (check with sccheck)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sctrace ST:1:1:1 LD:2:1:0 ...")
		os.Exit(2)
	}
	var tr trace.Trace
	for _, tok := range flag.Args() {
		op, err := parseOp(tok)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sctrace: %v\n", err)
			os.Exit(2)
		}
		tr = append(tr, op)
	}
	fmt.Println("trace:", tr)

	r, ok := trace.FindSerialReordering(tr)
	if !ok {
		fmt.Println("verdict: NOT sequentially consistent (no serial reordering exists)")
		if *window {
			fmt.Println("min reorder window: none")
		}
		os.Exit(1)
	}
	fmt.Println("verdict: sequentially consistent")
	fmt.Println("witness reordering:", r)
	fmt.Println("serial trace:      ", r.Apply(tr))

	g := graph.Canonical(tr, r)
	s, k := descriptor.EncodeAuto(g)
	err := checker.Check(s, k)
	fmt.Printf("constraint graph: %d edges, bandwidth %d, checker accepts=%v\n",
		g.NumEdges(), k, err == nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sctrace: internal inconsistency: %v\n", err)
		os.Exit(2)
	}
	if *window {
		fmt.Println("min reorder window:", boundedreorder.MinWindow(tr))
	}
	if *dump != "" {
		if err := os.WriteFile(*dump, descriptor.Marshal(s), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sctrace: dump: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("descriptor stream written to %s (check: sccheck -k %d -in %s)\n", *dump, k, *dump)
	}
}
