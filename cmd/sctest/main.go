// Command sctest runs the per-run testing scenario of Section 5 of Condon
// & Hu: random executions of a protocol are observed and checked on the
// fly, optionally cross-checking each trace against the exact (worst-case
// exponential) serial-reordering search of Gibbons & Korach. It is the
// lightweight alternative to full model checking for implementations too
// large to verify exhaustively.
//
// Usage:
//
//	sctest -protocol storebuffer -p 2 -b 2 -v 1 -runs 1000 -steps 16
//
// With -server, runs are adjudicated by a remote scserve service instead
// of the in-process checker — the fully online form of the Section 5
// deployment (observers local, adjudication central):
//
//	scserve -addr :7541 &
//	sctest -protocol msi -server 127.0.0.1:7541 -runs 1000
//
// With -grid, the campaign is sharded across a pool of scserve backends
// through the scgrid dispatcher — each run becomes a tokened grid session
// placed on a healthy backend, and the per-backend counters printed after
// the campaign show the sharding:
//
//	sctest -protocol msi -grid h1:7541,h2:7541,h3:7541 -workers 8 -runs 1000
//
// With -hist, the campaign tests the history-ingestion pipeline instead
// of a protocol: for each of -runs seeds, one anomaly-free replicated-KV
// history plus one history per injectable anomaly kind is generated,
// lowered, and adjudicated (locally, or via -server/-grid like protocol
// campaigns). Anomaly-free histories must be accepted; every injected
// anomaly must be rejected with its expected constraint code. -p and -b
// set the history's process and key counts, -hist-ops its length:
//
//	sctest -hist -runs 50 -p 4 -b 3 -workers 8
//	sctest -hist -runs 50 -grid h1:7541,h2:7541
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scverify/internal/history"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/sctest"
	"scverify/internal/trace"
	"scverify/internal/witness"
)

func main() {
	var (
		name    = flag.String("protocol", "msi", "protocol to test")
		procs   = flag.Int("p", 2, "number of processors")
		blocks  = flag.Int("b", 2, "number of memory blocks")
		values  = flag.Int("v", 2, "number of data values")
		qcap    = flag.Int("qcap", 1, "queue capacity (store buffer / lazy caching)")
		runs    = flag.Int("runs", 500, "number of random runs")
		steps   = flag.Int("steps", 24, "maximum steps per run")
		seed    = flag.Int64("seed", 1, "base random seed")
		exact   = flag.Bool("exact", true, "cross-check short traces with the exact reordering search")
		limit   = flag.Int("exactlimit", 14, "maximum trace length for the exact cross-check")
		workers = flag.Int("workers", 1, "parallel campaign workers")
		server  = flag.String("server", "", "scserve address; adjudicate runs remotely instead of in-process")
		grid    = flag.String("grid", "", "comma-separated scserve backends; shard the campaign across the pool")
		rpcTO   = flag.Duration("server-timeout", 30*time.Second, "per-operation I/O timeout for -server/-grid mode")
		retries = flag.Int("server-retries", 5, "connection attempts per remote operation before giving up")
		hist    = flag.Bool("hist", false, "campaign over generated operation histories instead of protocol runs")
		histOps = flag.Int("hist-ops", 60, "base operations per generated history (-hist mode)")
		tier    = flag.Bool("tier", false, "adjudicate every rejection against the weaker-model ladder and histogram the tiers")
	)
	flag.Parse()

	if *hist {
		os.Exit(histMain(*runs, *seed, *procs, *blocks, *histOps, *workers,
			*server, *grid, *rpcTO, *retries, *tier))
	}

	params := trace.Params{Procs: *procs, Blocks: *blocks, Values: *values}
	tgt, err := registry.Build(*name, registry.Options{Params: params, QueueCap: *qcap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := sctest.Config{
		Runs: *runs, Steps: *steps, Seed: *seed,
		Exact: *exact, ExactLimit: *limit, Workers: *workers,
		Tier: *tier,
	}
	var opts []sctest.CheckOpt
	if *tier {
		opts = append(opts, sctest.Tiered())
	}
	how := "in-process checker"
	var g *scgrid.Grid
	if *server != "" && *grid != "" {
		fmt.Fprintln(os.Stderr, "sctest: -server and -grid are mutually exclusive")
		os.Exit(2)
	}
	if *server != "" {
		cfg.Check = sctest.RemoteCheckerRetry(*server, scserve.RetryConfig{
			Timeout:     *rpcTO,
			MaxAttempts: *retries,
		}, opts...)
		how = "scserve at " + *server
	}
	if *grid != "" {
		g, err = scgrid.New(strings.Split(*grid, ","), scgrid.Config{
			Timeout:     *rpcTO,
			MaxAttempts: *retries,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sctest: grid: %v\n", err)
			os.Exit(2)
		}
		defer g.Close()
		cfg.Check = sctest.GridChecker(g, opts...)
		how = fmt.Sprintf("scgrid over %d backends", len(g.Stats().Backends))
	}
	fmt.Printf("testing %s (%s) at %s: %d runs × %d steps, adjudicated by %s\n",
		tgt.Protocol.Name(), tgt.Note, params, *runs, *steps, how)
	res := sctest.Campaign(tgt, cfg)
	fmt.Println(res)
	if g != nil {
		// Show how the campaign sharded: per-backend session counters.
		for _, bs := range g.Stats().Backends {
			fmt.Printf("  %s\n", bs)
		}
	}

	if res.SoundnessBreaks > 0 {
		fmt.Println("FATAL: a run was accepted whose trace is not SC — method soundness bug")
		os.Exit(1)
	}
	if res.WrongTiers > 0 {
		fmt.Println("FATAL: service and local tier adjudication disagreed on a rejection")
		os.Exit(1)
	}
	if res.FirstRejected != nil {
		fmt.Printf("first rejected run:\n  %s\n", res.FirstRejected)
		if *tier {
			if lt, ok := sctest.LocalTier(res.FirstRejected, tgt); ok && lt.Checked {
				fmt.Printf("  %s\n", lt)
			}
		}
		// Replay through the witness pipeline: minimized rejecting core,
		// concrete happens-before cycle, exact-search certification.
		if w, werr := witness.FromRun(res.FirstRejected, tgt, witness.Explain()); werr == nil && w != nil {
			fmt.Print(w.Render())
		} else {
			fmt.Printf("  trace: %s\n  cause: %v\n", res.FirstRejected.Trace, res.FirstCause)
		}
		os.Exit(1)
	}
}

// histMain runs the -hist campaign: seeds × (1 clean + one history per
// anomaly kind), adjudicated locally or through the chosen service, with
// the first unexpected outcome rendered as an annotated witness.
func histMain(seeds int, seed int64, procs, keys, ops, workers int,
	server, grid string, rpcTO time.Duration, retries int, tier bool) int {
	cfg := sctest.HistoryConfig{
		Seeds: seeds, Seed: seed, Workers: workers,
		Gen:  history.GenConfig{Processes: procs, Keys: keys, Ops: ops},
		Tier: tier,
	}
	var opts []sctest.CheckOpt
	if tier {
		opts = append(opts, sctest.Tiered())
	}
	how := "in-process checker"
	if server != "" && grid != "" {
		fmt.Fprintln(os.Stderr, "sctest: -server and -grid are mutually exclusive")
		return 2
	}
	var g *scgrid.Grid
	if server != "" {
		cfg.Check = sctest.HistoryRemoteCheckerRetry(server, scserve.RetryConfig{
			Timeout:     rpcTO,
			MaxAttempts: retries,
		}, opts...)
		how = "scserve at " + server
	}
	if grid != "" {
		var err error
		g, err = scgrid.New(strings.Split(grid, ","), scgrid.Config{
			Timeout:     rpcTO,
			MaxAttempts: retries,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sctest: grid: %v\n", err)
			return 2
		}
		defer g.Close()
		cfg.Check = sctest.HistoryGridChecker(g, opts...)
		how = fmt.Sprintf("scgrid over %d backends", len(g.Stats().Backends))
	}
	kinds := history.AllAnomalies()
	fmt.Printf("testing history ingestion: %d seeds × (1 clean + %d anomalies), %d processes × %d keys × %d ops, adjudicated by %s\n",
		seeds, len(kinds), procs, keys, ops, how)
	res := sctest.HistoryCampaign(cfg)
	fmt.Println(res)
	if g != nil {
		for _, bs := range g.Stats().Backends {
			fmt.Printf("  %s\n", bs)
		}
	}
	if res.Passed() {
		return 0
	}
	if f := res.FirstUnexpected; f != nil {
		fmt.Printf("first unexpected outcome:\n  %s\n", f)
		if f.Lowering != nil {
			if w := f.Lowering.Explain(); w != nil {
				fmt.Print(w.Render())
			}
		}
	}
	return 1
}
