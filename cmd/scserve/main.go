// Command scserve runs the concurrent network SC-checking service: the
// online form of the Section 5 testing deployment, where observers inside
// running systems stream k-graph descriptors to a central adjudicator.
// Clients (package scserve's Client, or `sctest -server`) open length-
// framed sessions, stream descriptor wire bytes, and receive one verdict
// frame each; every session gets a dedicated checker goroutine behind a
// bounded queue.
//
// Usage:
//
//	scserve -addr :7541                          # serve until SIGINT
//	scserve -addr :7541 -max-sessions 512 -read-timeout 1m
//	scserve -bench -bench-out BENCH_scserve.json # self-contained benchmark
//
// SIGINT/SIGTERM begins a graceful shutdown: the listener closes, in-
// flight sessions run to their verdicts (bounded by -drain-timeout), and
// the final stats line is printed.
//
// SIGUSR1 toggles drain mode without touching the listener: a draining
// server refuses fresh sessions with the draining verdict (retrying
// clients and scgrid redirect immediately), keeps serving resumes and
// in-flight sessions, and rejoins on the next SIGUSR1 — the rolling-
// restart primitive. The same switch is reachable over the wire via the
// drain admin frame (Client.Drain / Client.Undrain).
//
// The same server doubles as a distributed-exploration backend: an
// `scverify -grid` coordinator opens explore sessions (flag-gated hello
// extension) and the server runs one visited-set shard per session. The
// -explore-* flags size those shards; explore activity shows up in the
// stats line and on -stats-addr alongside the session counters.
//
// -stats-addr serves the live stats line over HTTP as plain text ("/")
// and JSON ("/json") for scrapers and the scgrid aggregator.
//
// Exit status: 0 clean serve/bench, 1 drain timeout exceeded, 2 usage/IO
// error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/scserve"
)

// parseWeights parses a -tenant-weights value like "alice=3,bob=1".
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad weight entry %q (want tenant=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight for tenant %q: %q (want positive integer)", name, val)
		}
		out[name] = w
	}
	return out, nil
}

// serveStats exposes the server's stats over HTTP: plain text on "/",
// JSON on "/json". Failures to serve stats never take the checker down.
func serveStats(addr string, srv *scserve.Server) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, srv.Stats())
	})
	mux.HandleFunc("/json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(srv.Stats())
	})
	go http.Serve(ln, mux)
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7541", "listen address")
		maxSessions  = flag.Int("max-sessions", 256, "maximum concurrent sessions")
		maxFrame     = flag.Int("max-frame", 1<<20, "maximum frame payload bytes")
		maxK         = flag.Int("max-k", 4096, "maximum session bandwidth bound k")
		queueBytes   = flag.Int("queue", 64<<10, "per-session symbol queue bytes")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-frame read / idle timeout (0 disables)")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "per-write deadline (negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
		ackInterval  = flag.Int("ack-interval", 1024, "symbols between checkpoints on resumable sessions")
		resumeMax    = flag.Int("resume-max", 1024, "maximum retained session checkpoints")
		resumeBytes  = flag.Int64("resume-bytes", 64<<20, "checkpoint retention memory budget in bytes")
		resumeTTL    = flag.Duration("resume-ttl", 15*time.Minute, "checkpoint retention age limit (negative disables)")
		verbose      = flag.Bool("v", false, "log per-connection diagnostics")
		structured   = flag.Bool("log", false, "emit structured (slog) session/drain events on stderr")
		statsAddr    = flag.String("stats-addr", "", "serve stats over HTTP on this address (text on /, JSON on /json)")

		exploreWorkers   = flag.Int("explore-workers", 0, "worker goroutines per distributed-exploration shard (0 = GOMAXPROCS)")
		exploreMaxStates = flag.Int("explore-max-states", 0, "hard per-shard visited-state budget for explore sessions (0 = default)")
		exploreStepDelay = flag.Duration("explore-step-delay", 0, "artificial per-expansion delay for explore sessions (benchmarking)")

		admitWait      = flag.Duration("admit-wait", 0, "how long an over-capacity hello may wait for a fair-share slot (0 rejects busy immediately)")
		admitQueue     = flag.Int("admit-queue", 0, "max hellos parked in the admission queue (0 = max-sessions)")
		tenantSessions = flag.Int("tenant-sessions", 0, "per-tenant concurrent session cap (0 uncapped)")
		tenantBPS      = flag.Int64("tenant-bytes-per-sec", 0, "per-tenant sustained stream byte rate (0 unlimited)")
		tenantBurst    = flag.Int64("tenant-burst-bytes", 0, "per-tenant burst bucket in bytes (0 = one second at the rate)")
		tenantWeights  = flag.String("tenant-weights", "", "fair-share weights, e.g. alice=3,bob=1 (default weight 1)")

		bench         = flag.Bool("bench", false, "run the self-contained benchmark instead of serving")
		benchSessions = flag.Int("bench-sessions", 256, "benchmark: total sessions")
		benchWorkers  = flag.Int("bench-workers", 64, "benchmark: concurrent client connections")
		benchSymbols  = flag.Int("bench-symbols", 5000, "benchmark: symbols per session")
		benchOut      = flag.String("bench-out", "BENCH_scserve.json", "benchmark: JSON output file")
	)
	flag.Parse()

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scserve: -tenant-weights: %v\n", err)
		os.Exit(2)
	}
	cfg := scserve.Config{
		MaxSessions:       *maxSessions,
		MaxFrame:          *maxFrame,
		MaxK:              *maxK,
		QueueBytes:        *queueBytes,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		AckInterval:       *ackInterval,
		ResumeMaxSessions: *resumeMax,
		ResumeMaxBytes:    *resumeBytes,
		ResumeTTL:         *resumeTTL,
		AdmitWait:         *admitWait,
		AdmitQueue:        *admitQueue,
		TenantSessions:    *tenantSessions,
		TenantBytesPerSec: *tenantBPS,
		TenantBurstBytes:  *tenantBurst,
		TenantWeights:     weights,
		ExploreWorkers:    *exploreWorkers,
		ExploreMaxStates:  *exploreMaxStates,
		ExploreStepDelay:  *exploreStepDelay,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	if *structured {
		cfg.Log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	if *bench {
		os.Exit(runBench(cfg, *benchSessions, *benchWorkers, *benchSymbols, *benchOut))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scserve: listen: %v\n", err)
		os.Exit(2)
	}
	srv := scserve.New(cfg)
	fmt.Printf("scserve: listening on %s (max %d sessions, k ≤ %d)\n", ln.Addr(), *maxSessions, *maxK)
	if *statsAddr != "" {
		if err := serveStats(*statsAddr, srv); err != nil {
			fmt.Fprintf(os.Stderr, "scserve: stats listen: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("scserve: stats on http://%s/\n", *statsAddr)
	}

	// SIGUSR1 toggles drain mode: first signal drains (fresh hellos get
	// the draining verdict, resumes and in-flight sessions keep running),
	// the next undrains — so an aborted rolling restart is reversible
	// without restarting the process.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			if srv.Draining() {
				srv.Undrain()
				fmt.Println("scserve: SIGUSR1: drain lifted; admitting fresh sessions")
			} else {
				srv.Drain()
				fmt.Println("scserve: SIGUSR1: draining; fresh sessions redirected, resumes still served")
			}
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Printf("scserve: %v: draining in-flight sessions (budget %s; signal again to force)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			// A second SIGINT/SIGTERM skips the rest of the drain.
			s := <-sig
			fmt.Printf("scserve: %v again: forcing shutdown\n", s)
			cancel()
		}()
		drained <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(ln); err != scserve.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "scserve: serve: %v\n", err)
		os.Exit(2)
	}
	err = <-drained
	fmt.Printf("scserve: %s\n", srv.Stats())
	if err != nil {
		fmt.Fprintf(os.Stderr, "scserve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
}

// benchResult is the BENCH_scserve.json schema.
type benchResult struct {
	Bench             string        `json:"bench"`
	Sessions          int           `json:"sessions"`
	Workers           int           `json:"workers"`
	SymbolsPerSession int           `json:"symbols_per_session"`
	Accepts           int           `json:"accepts"`
	Rejects           int           `json:"rejects"`
	ElapsedSeconds    float64       `json:"elapsed_seconds"`
	SessionsPerSec    float64       `json:"sessions_per_sec"`
	SymbolsPerSec     float64       `json:"symbols_per_sec"`
	BytesPerSec       float64       `json:"bytes_per_sec"`
	Server            scserve.Stats `json:"server_stats"`
}

// runBench measures client↔server session throughput over loopback TCP:
// workers share the total session count, each session streaming a
// synthetic SC stream (every eighth session a rejecting one, exercising
// the early-verdict path).
func runBench(cfg scserve.Config, sessions, workers, symbols int, out string) int {
	if workers > sessions {
		workers = sessions
	}
	if cfg.MaxSessions < workers {
		cfg.MaxSessions = workers
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scserve bench: listen: %v\n", err)
		return 2
	}
	srv := scserve.New(cfg)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	h := scserve.SyntheticHeader()
	acceptWire := descriptor.Marshal(scserve.SyntheticAccept(symbols))
	rejectStream, rejectIdx := scserve.SyntheticReject(symbols - 4)
	rejectWire := descriptor.Marshal(rejectStream)

	var mu sync.Mutex
	accepts, rejects := 0, 0
	var bytesSent int64
	failures := 0

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := sessions / workers
		if w < sessions%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			c, err := scserve.DialTimeout(ln.Addr().String(), 30*time.Second)
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			defer c.Close()
			localA, localR, localBytes := 0, 0, int64(0)
			for i := 0; i < share; i++ {
				reject := (w+i)%8 == 7
				wire := acceptWire
				if reject {
					wire = rejectWire
				}
				// Benchmark with checkpointing on: each session announces a
				// token, so the measured throughput includes the server's
				// periodic checker clones and ack frames.
				sh := h
				sh.Token = fmt.Sprintf("bench-%d-%d", w, i)
				sess, err := c.Session(sh)
				if err == nil {
					err = sess.SendBytes(wire)
				}
				var v scserve.Verdict
				if err == nil {
					v, err = sess.Finish()
				}
				switch {
				case err != nil,
					reject && (v.Code != scserve.VerdictReject || v.Symbol != rejectIdx),
					!reject && v.Code != scserve.VerdictAccept:
					mu.Lock()
					failures++
					mu.Unlock()
					return
				case reject:
					localR++
				default:
					localA++
				}
				localBytes += int64(len(wire))
			}
			mu.Lock()
			accepts += localA
			rejects += localR
			bytesSent += localBytes
			mu.Unlock()
		}(w, share)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	<-serveDone

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "scserve bench: %d sessions failed or returned wrong verdicts\n", failures)
		return 2
	}
	res := benchResult{
		Bench:             "scserve",
		Sessions:          sessions,
		Workers:           workers,
		SymbolsPerSession: symbols,
		Accepts:           accepts,
		Rejects:           rejects,
		ElapsedSeconds:    elapsed.Seconds(),
		SessionsPerSec:    float64(sessions) / elapsed.Seconds(),
		SymbolsPerSec:     float64(srv.Stats().SymbolsTotal) / elapsed.Seconds(),
		BytesPerSec:       float64(bytesSent) / elapsed.Seconds(),
		Server:            srv.Stats(),
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scserve bench: %v\n", err)
		return 2
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scserve bench: write %s: %v\n", out, err)
		return 2
	}
	fmt.Printf("scserve bench: %d sessions × %d symbols over %d conns in %.2fs — %.0f sessions/s, %.0f symbols/s (%s)\n",
		sessions, symbols, workers, res.ElapsedSeconds, res.SessionsPerSec, res.SymbolsPerSec, out)
	return 0
}
