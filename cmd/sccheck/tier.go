package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"scverify/internal/history"
	"scverify/internal/spectrum"
	"scverify/internal/trace"
	"scverify/internal/witness"
)

// tierLitmus is the canonical core for each rung of the ladder: the
// smallest execution whose strongest satisfied model is exactly that
// tier. The bench adjudicates each repeatedly and insists the tier never
// drifts, so the numbers double as a correctness soak.
var tierLitmus = []struct {
	name string
	tr   trace.Trace
	want spectrum.Tier
}{
	{
		// Store buffering (Dekker): both loads overtake the local store.
		name: "store-buffering",
		tr: trace.Trace{
			trace.ST(1, 1, 1), trace.LD(1, 2, trace.Bottom),
			trace.ST(2, 2, 1), trace.LD(2, 1, trace.Bottom),
		},
		want: spectrum.TierTSO,
	},
	{
		// Relaxed message passing: the flag store drains before the data
		// store — needs store-store reordering, so PSO but not TSO.
		name: "message-passing-relaxed",
		tr: trace.Trace{
			trace.ST(1, 1, 1), trace.ST(1, 2, 2),
			trace.LD(2, 2, 2), trace.LD(2, 1, trace.Bottom),
		},
		want: spectrum.TierPSO,
	},
	{
		// IRIW: two readers disagree on the order of independent writes.
		name: "iriw",
		tr: trace.Trace{
			trace.ST(1, 1, 1), trace.ST(2, 2, 1),
			trace.LD(3, 1, 1), trace.LD(3, 2, trace.Bottom),
			trace.LD(4, 2, 1), trace.LD(4, 1, trace.Bottom),
		},
		want: spectrum.TierCausal,
	},
	{
		// Causality chain dropped: PRAM holds, the causal closure fails.
		name: "causality-violation",
		tr: trace.Trace{
			trace.ST(1, 1, 1),
			trace.LD(2, 1, 1), trace.ST(2, 2, 2),
			trace.LD(3, 2, 2), trace.LD(3, 1, trace.Bottom),
		},
		want: spectrum.TierPRAM,
	},
	{
		// A processor missing its own write fails every rung.
		name: "read-own-writes-violation",
		tr: trace.Trace{
			trace.ST(1, 1, 1), trace.LD(1, 1, trace.Bottom),
		},
		want: spectrum.TierNone,
	},
}

// tierBench measures weaker-model adjudication throughput: one arm per
// ladder rung adjudicating that rung's canonical litmus core, plus an
// end-to-end arm running anomalous histories through the full -tier
// pipeline (lowering already done; TierWitness minimization then
// adjudication). Every arm asserts its expected tier on every iteration,
// so a passing bench is also a tier-stability check.
func tierBench(n int, out string) int {
	type arm struct {
		Name          string  `json:"name"`
		Tier          string  `json:"tier"`
		Adjudications int     `json:"adjudications"`
		Ops           int64   `json:"ops"`
		Seconds       float64 `json:"seconds"`
		PerSec        float64 `json:"adjudications_per_sec"`
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "sccheck: bench: "+format+"\n", args...)
		return 2
	}

	arms := make([]arm, 0, len(tierLitmus)+1)
	for _, lc := range tierLitmus {
		a := arm{Name: lc.name, Tier: lc.want.String(), Adjudications: n}
		start := time.Now()
		for i := 0; i < n; i++ {
			res := spectrum.Adjudicate(lc.tr, spectrum.Options{})
			if !res.Checked {
				return fail("%s: %d-op core not adjudicated", lc.name, len(lc.tr))
			}
			if res.Tier != lc.want {
				return fail("%s adjudicated to tier %s, want %s", lc.name, res.Tier, lc.want)
			}
			a.Ops += int64(len(lc.tr))
		}
		a.Seconds = time.Since(start).Seconds()
		if a.Seconds > 0 {
			a.PerSec = float64(a.Adjudications) / a.Seconds
		}
		arms = append(arms, a)
	}

	// End-to-end arm: a rotating corpus of anomalous histories, one
	// injected kind each, lowered once up front; the loop pays witness
	// minimization plus ladder adjudication — what a tiered scserve
	// backend pays per rejection.
	const corpus = 16
	kinds := history.AllAnomalies()
	lowerings := make([]*history.Lowering, corpus)
	for i := range lowerings {
		g, err := history.Generate(history.GenConfig{
			Seed: int64(i + 1), Processes: 4, Keys: 3, Ops: 60,
			Anomalies: []history.AnomalyKind{kinds[i%len(kinds)]},
		})
		if err != nil {
			return fail("%v", err)
		}
		l, err := history.Lower(g.History)
		if err != nil {
			return fail("%v", err)
		}
		lowerings[i] = l
	}
	e2eN := n / 10
	if e2eN < 10 {
		e2eN = 10
	}
	e2e := arm{Name: "history-e2e", Tier: spectrum.TierNone.String(), Adjudications: e2eN}
	checked := 0
	start := time.Now()
	for i := 0; i < e2eN; i++ {
		l := lowerings[i%corpus]
		w := witness.TierWitness(l.Stream, l.K, l.Params)
		if w == nil {
			return fail("anomalous history %d was accepted", i%corpus)
		}
		w.Adjudicate(0)
		e2e.Ops += int64(len(l.Trace))
		if w.Spectrum == nil || !w.Spectrum.Checked || w.Spectrum.Bounded {
			continue // missing tier is legal; a wrong one is not
		}
		checked++
		want := kinds[(i%corpus)%len(kinds)].Tier()
		if w.Spectrum.Tier != want {
			return fail("history %d adjudicated to tier %s, want %s", i%corpus, w.Spectrum.Tier, want)
		}
	}
	e2e.Seconds = time.Since(start).Seconds()
	if e2e.Seconds > 0 {
		e2e.PerSec = float64(e2e.Adjudications) / e2e.Seconds
	}
	if checked == 0 {
		return fail("no end-to-end adjudication resolved a tier")
	}
	arms = append(arms, e2e)

	result := struct {
		Benchmark string    `json:"benchmark"`
		Arms      []arm     `json:"arms"`
		When      time.Time `json:"when"`
	}{Benchmark: "sctier", Arms: arms, When: time.Now().UTC()}

	for _, a := range result.Arms {
		fmt.Printf("%-26s %7d adjudications (tier %-6s) in %6.2fs: %9.0f/s\n",
			a.Name, a.Adjudications, a.Tier, a.Seconds, a.PerSec)
	}
	if out != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return fail("%v", err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	return 0
}
