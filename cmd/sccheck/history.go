package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"scverify/internal/history"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/sctest"
	"scverify/internal/witness"
)

// historyMain implements `sccheck history`: adjudicate a black-box
// operation history (JSONL or the Jepsen-style EDN subset) by lowering it
// onto a descriptor stream and checking it locally, via scserve, or
// through an scgrid pool.
//
//	sccheck history -in run.jsonl                  # local check
//	sccheck history -in run.edn -explain           # witness in history vocabulary
//	cat run.jsonl | sccheck history                # stdin (JSONL unless it sniffs as EDN)
//	sccheck history -in run.jsonl -server h:7541   # adjudicate via scserve
//	sccheck history -in run.jsonl -grid h1:7541,h2:7541
//	sccheck history -bench -bench-out=BENCH_schist.json
//
// The exit-code contract matches the main command: 0 the history is
// accepted as sequentially consistent, 1 the checker rejected it, 2 the
// check did not happen (malformed input, ill-formed history, usage, or
// transport failure).
func historyMain(args []string) int {
	fs := flag.NewFlagSet("sccheck history", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input file (default stdin)")
		format  = fs.String("format", "auto", "input format: auto|jsonl|edn")
		strict  = fs.Bool("strict", false, "reject histories with operations still pending at end of input")
		explain = fs.Bool("explain", false, "on rejection, print a minimized witness in history vocabulary")
		quiet   = fs.Bool("q", false, "suppress the acceptance summary line")
		server  = fs.String("server", "", "scserve address; adjudicate the lowered stream remotely")
		grid    = fs.String("grid", "", "comma-separated scserve backends; adjudicate through the scgrid dispatcher")
		srvTO   = fs.Duration("server-timeout", 30*time.Second, "per-operation I/O timeout for -server/-grid mode")
		retries = fs.Int("server-retries", 5, "connection attempts per remote operation before giving up")
		tier    = fs.Bool("tier", false, "on rejection, adjudicate the witness core against the weaker-model ladder; with -server/-grid, ask the service to")

		bench      = fs.Bool("bench", false, "run the ingestion+checking throughput benchmark instead of checking input")
		benchHists = fs.Int("bench-histories", 2000, "histories per benchmark arm")
		benchOps   = fs.Int("bench-ops", 200, "base operations per benchmark history")
		benchOut   = fs.String("bench-out", "", "write the benchmark result as JSON to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sccheck history [-in file] [-format auto|jsonl|edn] [-strict] [-explain] [-server addr | -grid addrs] [-bench]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if *bench {
		return historyBench(*benchHists, *benchOps, *benchOut)
	}
	if *server != "" && *grid != "" {
		fmt.Fprintln(os.Stderr, "sccheck history: -server and -grid are mutually exclusive")
		return 2
	}
	if *explain && (*server != "" || *grid != "") {
		fmt.Fprintln(os.Stderr, "sccheck history: -explain is local-only; not available with -server/-grid")
		return 2
	}

	h, err := readHistory(*in, *format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck history: %v\n", err)
		return 2
	}
	if *strict {
		if _, err := h.Ops(true); err != nil {
			fmt.Fprintf(os.Stderr, "sccheck history: %v\n", err)
			return 2
		}
	}
	l, err := history.Lower(h)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck history: %v\n", err)
		return 2
	}

	if *server != "" || *grid != "" {
		return historyRemote(l, *server, *grid, *srvTO, *retries, *tier)
	}

	if err := l.Check(); err != nil {
		if *explain || *tier {
			var w *witness.Witness
			if *tier {
				w = l.ExplainTier()
			} else {
				w = l.Explain()
			}
			if w != nil {
				fmt.Printf("REJECTED (%s)\n", w.Summary())
				if *explain {
					fmt.Print(w.Render())
				} else if w.Spectrum != nil {
					fmt.Print(w.Spectrum.Narrative(w.Trace))
				}
				return 1
			}
		}
		fmt.Printf("REJECTED: %v\n", err)
		return 1
	}
	if !*quiet {
		fmt.Printf("accepted: %s\n", l.Summary())
	}
	return 0
}

// readHistory loads and parses the input, sniffing the format when asked
// to: the file extension decides first (.edn vs anything else), then the
// first significant bytes — EDN histories open with '[', ';' or '{:',
// JSONL lines with '{"'.
func readHistory(path, format string) (*history.History, error) {
	var data []byte
	var err error
	if path == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	f := format
	if f == "auto" {
		f = sniffFormat(path, data)
	}
	switch f {
	case "jsonl":
		return history.ParseJSONL(bytes.NewReader(data))
	case "edn":
		return history.ParseEDN(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("unknown format %q (want auto, jsonl, or edn)", format)
	}
}

func sniffFormat(path string, data []byte) string {
	switch filepath.Ext(path) {
	case ".edn":
		return "edn"
	case ".jsonl", ".json":
		return "jsonl"
	}
	s := bytes.TrimLeft(data, " \t\r\n")
	switch {
	case len(s) == 0:
		return "jsonl"
	case s[0] == '[' || s[0] == ';':
		return "edn"
	case bytes.HasPrefix(s, []byte("{:")):
		return "edn"
	default:
		return "jsonl"
	}
}

// historyRemote ships the lowered descriptor stream to a service (or
// through the grid) and maps its verdict onto the exit-code contract.
func historyRemote(l *history.Lowering, server, grid string, timeout time.Duration, retries int, tiered bool) int {
	var opts []sctest.CheckOpt
	if tiered {
		opts = append(opts, sctest.Tiered())
	}
	var check sctest.HistoryChecker
	if grid != "" {
		g, err := scgrid.New(strings.Split(grid, ","), scgrid.Config{
			Timeout:     timeout,
			MaxAttempts: retries,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccheck history: grid: %v\n", err)
			return 2
		}
		defer g.Close()
		check = sctest.HistoryGridChecker(g, opts...)
	} else {
		check = sctest.HistoryRemoteCheckerRetry(server, scserve.RetryConfig{Timeout: timeout, MaxAttempts: retries}, opts...)
	}
	err := check(l)
	if err == nil {
		fmt.Printf("accepted: %s\n", l.Summary())
		return 0
	}
	var ve *scserve.VerdictError
	if errors.As(err, &ve) {
		return reportVerdict(ve.Verdict)
	}
	fmt.Fprintf(os.Stderr, "sccheck history: %v\n", err)
	return 2
}

// historyBench measures end-to-end ingestion throughput: parse canonical
// JSONL, lower, and check, for a clean arm and an anomalous arm, writing
// histories/s and ops/s. The corpus is generated, rendered to JSONL once,
// and replayed from memory so the numbers measure the pipeline, not the
// generator.
func historyBench(histories, ops int, out string) int {
	type arm struct {
		Name        string  `json:"name"`
		Histories   int     `json:"histories"`
		Ops         int64   `json:"ops"`
		Seconds     float64 `json:"seconds"`
		HistPerSec  float64 `json:"histories_per_sec"`
		OpsPerSec   float64 `json:"ops_per_sec"`
		Rejected    int     `json:"rejected"`
		BytesPerSec float64 `json:"bytes_per_sec"`
	}
	runArm := func(name string, kinds []history.AnomalyKind) (arm, error) {
		// Pre-render a small rotating corpus so parse cost is measured on
		// realistic bytes without the benchmark loop paying generation.
		const corpus = 16
		inputs := make([][]byte, corpus)
		for i := range inputs {
			g, err := history.Generate(history.GenConfig{
				Seed: int64(i + 1), Processes: 4, Keys: 3, Ops: ops, Anomalies: kinds,
			})
			if err != nil {
				return arm{}, err
			}
			var buf bytes.Buffer
			if err := g.History.WriteJSONL(&buf); err != nil {
				return arm{}, err
			}
			inputs[i] = buf.Bytes()
		}
		a := arm{Name: name, Histories: histories}
		var bytesIn int64
		start := time.Now()
		for i := 0; i < histories; i++ {
			data := inputs[i%corpus]
			bytesIn += int64(len(data))
			h, err := history.ParseJSONL(bytes.NewReader(data))
			if err != nil {
				return arm{}, err
			}
			l, err := history.Lower(h)
			if err != nil {
				return arm{}, err
			}
			a.Ops += int64(len(l.Trace))
			if err := l.Check(); err != nil {
				a.Rejected++
			}
		}
		a.Seconds = time.Since(start).Seconds()
		if a.Seconds > 0 {
			a.HistPerSec = float64(a.Histories) / a.Seconds
			a.OpsPerSec = float64(a.Ops) / a.Seconds
			a.BytesPerSec = float64(bytesIn) / a.Seconds
		}
		return a, nil
	}

	clean, err := runArm("clean", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck history: bench: %v\n", err)
		return 2
	}
	if clean.Rejected != 0 {
		fmt.Fprintf(os.Stderr, "sccheck history: bench: %d clean histories rejected\n", clean.Rejected)
		return 2
	}
	anom, err := runArm("anomalous", history.AllAnomalies())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck history: bench: %v\n", err)
		return 2
	}
	if anom.Rejected != anom.Histories {
		fmt.Fprintf(os.Stderr, "sccheck history: bench: only %d/%d anomalous histories rejected\n", anom.Rejected, anom.Histories)
		return 2
	}

	result := struct {
		Benchmark string    `json:"benchmark"`
		OpsPerRun int       `json:"base_ops_per_history"`
		Arms      []arm     `json:"arms"`
		When      time.Time `json:"when"`
	}{Benchmark: "schist", OpsPerRun: ops, Arms: []arm{clean, anom}, When: time.Now().UTC()}

	for _, a := range result.Arms {
		fmt.Printf("%-10s %7d histories, %9d ops in %6.2fs: %8.0f histories/s, %10.0f ops/s\n",
			a.Name, a.Histories, a.Ops, a.Seconds, a.HistPerSec, a.OpsPerSec)
	}
	if out != "" {
		data, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccheck history: bench: %v\n", err)
			return 2
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sccheck history: bench: %v\n", err)
			return 2
		}
		fmt.Printf("wrote %s\n", out)
	}
	return 0
}
