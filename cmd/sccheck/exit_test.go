package main

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// startServer runs an scserve backend for the exit-code tests.
func startServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := scserve.New(scserve.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestExitCodes pins the documented contract for both remote modes:
// 0 = the checker accepted, 1 = the checker rejected, 2 = the check did
// not happen (transport failure) — never conflated.
func TestExitCodes(t *testing.T) {
	addr := startServer(t)
	params := trace.Params{Procs: 1, Blocks: 1, Values: 2}
	acceptWire := descriptor.Marshal(scserve.SyntheticAccept(64))
	rejectStream, _ := scserve.SyntheticReject(32)
	rejectWire := descriptor.Marshal(rejectStream)

	modes := []struct {
		name string
		run  func(wire []byte, target string) int
	}{
		{"server", func(wire []byte, target string) int {
			return remoteMain(bytes.NewReader(wire), target, scserve.SyntheticK, params, 2*time.Second, 2)
		}},
		{"grid", func(wire []byte, target string) int {
			return gridMain(bytes.NewReader(wire), target, scserve.SyntheticK, params, 2*time.Second, 2)
		}},
	}
	for _, m := range modes {
		if got := m.run(acceptWire, addr); got != 0 {
			t.Errorf("%s: accepting stream: exit %d, want 0", m.name, got)
		}
		if got := m.run(rejectWire, addr); got != 1 {
			t.Errorf("%s: rejecting stream: exit %d, want 1", m.name, got)
		}
		if got := m.run(acceptWire, deadAddr(t)); got != 2 {
			t.Errorf("%s: dead backend: exit %d, want 2 (transport, not a verdict)", m.name, got)
		}
	}
}
