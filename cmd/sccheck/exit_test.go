package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/scserve"
	"scverify/internal/trace"
)

// startServer runs an scserve backend for the exit-code tests.
func startServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := scserve.New(scserve.Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

// deadAddr returns an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestExitCodes pins the documented contract for both remote modes:
// 0 = the checker accepted, 1 = the checker rejected, 2 = the check did
// not happen (transport failure) — never conflated.
func TestExitCodes(t *testing.T) {
	addr := startServer(t)
	params := trace.Params{Procs: 1, Blocks: 1, Values: 2}
	acceptWire := descriptor.Marshal(scserve.SyntheticAccept(64))
	rejectStream, _ := scserve.SyntheticReject(32)
	rejectWire := descriptor.Marshal(rejectStream)

	modes := []struct {
		name string
		run  func(wire []byte, target string) int
	}{
		{"server", func(wire []byte, target string) int {
			return remoteMain(bytes.NewReader(wire), target, scserve.SyntheticK, params, 2*time.Second, 2, false)
		}},
		{"grid", func(wire []byte, target string) int {
			return gridMain(bytes.NewReader(wire), target, scserve.SyntheticK, params, 2*time.Second, 2, false)
		}},
		// Asking for tiers must not disturb the exit-code contract.
		{"server-tier", func(wire []byte, target string) int {
			return remoteMain(bytes.NewReader(wire), target, scserve.SyntheticK, params, 2*time.Second, 2, true)
		}},
		{"grid-tier", func(wire []byte, target string) int {
			return gridMain(bytes.NewReader(wire), target, scserve.SyntheticK, params, 2*time.Second, 2, true)
		}},
	}
	for _, m := range modes {
		if got := m.run(acceptWire, addr); got != 0 {
			t.Errorf("%s: accepting stream: exit %d, want 0", m.name, got)
		}
		if got := m.run(rejectWire, addr); got != 1 {
			t.Errorf("%s: rejecting stream: exit %d, want 1", m.name, got)
		}
		if got := m.run(acceptWire, deadAddr(t)); got != 2 {
			t.Errorf("%s: dead backend: exit %d, want 2 (transport, not a verdict)", m.name, got)
		}
	}
}

// TestHistoryExitCodes pins the same contract for the history subcommand
// across all three adjudication modes: 0 = the history is SC-accepted,
// 1 = the checker rejected it, 2 = the check did not happen (malformed
// input or transport failure).
func TestHistoryExitCodes(t *testing.T) {
	addr := startServer(t)
	clean := "../../examples/histories/clean.jsonl"
	stale := "../../examples/histories/stale-read.jsonl"
	malformed := filepath.Join(t.TempDir(), "malformed.jsonl")
	if err := os.WriteFile(malformed, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	modes := []struct {
		name  string
		extra []string
	}{
		{"local", nil},
		{"local-tier", []string{"-tier"}},
		{"server", []string{"-server", addr, "-server-timeout", "2s", "-server-retries", "2"}},
		{"server-tier", []string{"-tier", "-server", addr, "-server-timeout", "2s", "-server-retries", "2"}},
		{"grid", []string{"-grid", addr, "-server-timeout", "2s", "-server-retries", "2"}},
	}
	for _, m := range modes {
		run := func(in string) int {
			return historyMain(append([]string{"-in", in, "-q"}, m.extra...))
		}
		if got := run(clean); got != 0 {
			t.Errorf("%s: clean history: exit %d, want 0", m.name, got)
		}
		if got := run(stale); got != 1 {
			t.Errorf("%s: stale-read history: exit %d, want 1", m.name, got)
		}
		if got := run(malformed); got != 2 {
			t.Errorf("%s: malformed input: exit %d, want 2", m.name, got)
		}
	}

	// Transport failure must be exit 2, not a verdict.
	dead := deadAddr(t)
	if got := historyMain([]string{"-in", clean, "-q", "-server", dead, "-server-timeout", "500ms", "-server-retries", "1"}); got != 2 {
		t.Errorf("dead backend: exit %d, want 2 (transport, not a verdict)", got)
	}

	// The explain path keeps the rejection exit code.
	if got := historyMain([]string{"-in", "../../examples/histories/partition.edn", "-explain"}); got != 1 {
		t.Errorf("explain on anomalous EDN history: exit %d, want 1", got)
	}
}
