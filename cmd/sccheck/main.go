// Command sccheck runs the protocol-independent SC checker over a k-graph
// descriptor stream in the repository's binary wire format, read from a
// file or stdin. It decouples checking from observation: an observer
// embedded in a real system (or another tool entirely) can log its
// descriptor stream and have it adjudicated offline — the testing
// deployment sketched in Section 5 of Condon & Hu. The stream is decoded
// incrementally (symbol by symbol), so memory stays bounded on
// arbitrarily long inputs, and decode failures report the byte offset and
// symbol index of the malformed symbol.
//
// Usage:
//
//	scexperiments ... | sccheck -k 12            # stream on stdin
//	sccheck -k 12 -in run.desc                   # stream from a file
//	sccheck -k 12 -in run.desc -text             # also print each symbol
//	sccheck -k 12 -in run.desc -explain          # minimized witness on rejection
//	sccheck -k 12 -in run.desc -server host:7541 # adjudicate via scserve
//	sccheck -k 12 -in run.desc -grid h1:7541,h2:7541 # adjudicate via a backend pool
//
// With -server, the stream is adjudicated by a remote scserve service
// through the fault-tolerant RetryClient: the session survives connection
// loss by resuming from the server's last checkpoint and replaying only
// the unacked tail. -server-timeout bounds each network operation and
// -server-retries the connection attempts per operation.
//
// With -grid, the stream is dispatched through the scgrid fabric over a
// comma-separated pool of scserve backends: a backend blip resumes the
// session from its checkpoint, a backend death fails it over to a live
// backend (replaying the stream), and a saturated pool answers busy.
//
// With -explain, a rejection is explained rather than merely located: the
// stream is shrunk to a 1-minimal rejecting core (delta debugging), the
// offending happens-before cycle is printed as concrete memory operations,
// and the witness trace is cross-checked against the exact Gibbons–Korach
// serial-reordering search. The whole stream is buffered in memory, so
// -explain trades sccheck's default bounded-memory streaming for
// explanatory power.
//
// The history subcommand adjudicates black-box operation histories
// (Jepsen-style invoke/ok/fail/info records in JSONL or an EDN subset)
// by lowering them onto descriptor streams — see historyMain:
//
//	sccheck history -in run.jsonl                # local check
//	sccheck history -in run.edn -explain         # witness in history vocabulary
//	sccheck history -in run.jsonl -grid h1:7541,h2:7541
//
// The lint subcommand instead runs the Γ-membership linter (package
// gammalint) over registered protocols:
//
//	sccheck lint msi lazy                        # lint named protocols
//	sccheck lint -all                            # lint every registered one
//	sccheck lint -all -p 2 -b 2 -v 2 -states 20000
//	sccheck lint -all -json                      # machine-readable reports
//	sccheck lint -all -overk                     # also warn on over-declared k (GL012)
//
// Exit status: 0 accepted/clean, 1 rejected/findings, 2 usage, IO, or
// transport error (including busy — anything that is not a checker
// verdict). Exit 1 always means the checker itself rejected; exit 2
// means the check did not happen.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/gammalint"
	"scverify/internal/registry"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
	"scverify/internal/trace"
	"scverify/internal/witness"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(lintMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "history" {
		os.Exit(historyMain(os.Args[2:]))
	}
	var (
		k       = flag.Int("k", 0, "bandwidth bound (required; IDs range over 1..k+1)")
		in      = flag.String("in", "", "input file (default stdin)")
		text    = flag.Bool("text", false, "print the decoded stream in the paper's notation")
		explain = flag.Bool("explain", false, "on rejection, print a minimized structured witness (buffers the whole stream)")
		procs   = flag.Int("p", 0, "optional: processors, enables parameter checking")
		blocks  = flag.Int("b", 0, "optional: blocks")
		values  = flag.Int("v", 0, "optional: values")
		server  = flag.String("server", "", "scserve address; adjudicate the stream remotely")
		grid    = flag.String("grid", "", "comma-separated scserve backends; adjudicate through the scgrid dispatcher")
		srvTO   = flag.Duration("server-timeout", 30*time.Second, "per-operation I/O timeout for -server/-grid mode")
		retries = flag.Int("server-retries", 5, "connection attempts per remote operation before giving up")
		tier    = flag.Bool("tier", false, "on rejection, adjudicate the witness core against the weaker-model ladder (TSO/PSO/causal/PRAM); with -server/-grid, ask the service to")

		bench    = flag.Bool("bench", false, "with -tier: run the tier-adjudication benchmark instead of checking input")
		benchN   = flag.Int("bench-n", 2000, "adjudications per benchmark arm")
		benchOut = flag.String("bench-out", "", "write the benchmark result as JSON to this file")
	)
	flag.Parse()

	if *bench {
		if !*tier {
			fmt.Fprintln(os.Stderr, "sccheck: -bench requires -tier (the tier-adjudication benchmark)")
			os.Exit(2)
		}
		os.Exit(tierBench(*benchN, *benchOut))
	}
	if *k < 1 {
		fmt.Fprintln(os.Stderr, "sccheck: -k must be at least 1")
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccheck: open: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}

	params := trace.Params{}
	if *procs > 0 {
		params = trace.Params{Procs: *procs, Blocks: *blocks, Values: *values}
	}

	if *server != "" || *grid != "" {
		if *text || *explain {
			fmt.Fprintln(os.Stderr, "sccheck: -text and -explain are local-only; not available with -server/-grid")
			os.Exit(2)
		}
		if *server != "" && *grid != "" {
			fmt.Fprintln(os.Stderr, "sccheck: -server and -grid are mutually exclusive")
			os.Exit(2)
		}
		if *grid != "" {
			os.Exit(gridMain(r, *grid, *k, params, *srvTO, *retries, *tier))
		}
		os.Exit(remoteMain(r, *server, *k, params, *srvTO, *retries, *tier))
	}
	c := checker.New(*k)
	if params.Procs > 0 {
		c.SetParams(params)
	}

	// Decode incrementally: memory stays bounded however long the stream
	// is, and the checker rejects as early as the stream allows. With
	// -explain the symbols are buffered instead and explained after EOF.
	dec := descriptor.NewDecoder(bufio.NewReaderSize(r, 64<<10))
	var stream descriptor.Stream
	ops := 0
	for {
		off := dec.Offset()
		sym, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var de *descriptor.DecodeError
			if errors.As(err, &de) {
				fmt.Fprintf(os.Stderr, "sccheck: decode: symbol %d at byte %d: %s\n", de.Symbol+1, de.Offset, de.Msg)
			} else {
				fmt.Fprintf(os.Stderr, "sccheck: read: %v\n", err)
			}
			os.Exit(2)
		}
		if *text {
			fmt.Println(sym.Text())
		}
		if n, ok := sym.(descriptor.Node); ok && n.Op != nil {
			ops++
		}
		if *explain || *tier {
			stream = append(stream, sym)
			continue
		}
		if err := c.Step(sym); err != nil {
			fmt.Printf("REJECTED at symbol %d, byte %d (%s): %v\n", dec.Count(), off, sym.Text(), err)
			os.Exit(1)
		}
	}
	if *explain || *tier {
		// -tier uses the canonical TierWitness core — the stream truncated
		// at the rejecting symbol, minimized preserving non-SC-ness — so
		// the tier printed here equals what a tiered scserve backend would
		// put on the verdict for the same stream.
		var w *witness.Witness
		if *tier {
			w = witness.TierWitness(stream, *k, params)
		} else {
			w = witness.FromStream(stream, *k, witness.Options{Minimize: true, Params: params})
		}
		if w != nil {
			if *tier {
				w.Adjudicate(0)
			}
			fmt.Printf("REJECTED (%s)\n", w.Summary())
			if *explain {
				fmt.Print(w.Render())
			} else if w.Spectrum != nil {
				fmt.Print(w.Spectrum.Narrative(w.Trace))
			}
			os.Exit(1)
		}
	} else if err := c.Finish(); err != nil {
		fmt.Printf("REJECTED at end of stream: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("accepted: %d symbols describe an acyclic constraint graph for trace of %d operations\n",
		dec.Count(), ops)
}

// remoteMain streams the raw descriptor wire bytes to an scserve service
// through the fault-tolerant RetryClient and reports its verdict. The
// stream is shipped as-is — the server decodes and positions errors —
// and the session survives connection loss by resuming from the server's
// last checkpoint.
func remoteMain(r io.Reader, addr string, k int, params trace.Params, timeout time.Duration, retries int, tiered bool) int {
	rc := scserve.NewRetryClient(addr, scserve.RetryConfig{Timeout: timeout, MaxAttempts: retries})
	defer rc.Close()
	sess, err := rc.Session(scserve.Header{K: k, Params: params, Tiered: tiered})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: remote: %v\n", err)
		return 2
	}
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := sess.SendBytes(buf[:n]); err != nil {
				fmt.Fprintf(os.Stderr, "sccheck: remote: %v\n", err)
				return 2
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "sccheck: read: %v\n", rerr)
			return 2
		}
	}
	v, err := sess.Finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: remote: %v\n", err)
		return 2
	}
	return reportVerdict(v)
}

// gridMain streams the raw descriptor wire bytes through the scgrid
// dispatcher over a pool of scserve backends: the session is tokened, so
// a backend blip resumes from its checkpoint, a backend death fails over
// to a live backend with a full replay, and a saturated pool answers
// busy (exit 2) rather than hanging.
func gridMain(r io.Reader, backends string, k int, params trace.Params, timeout time.Duration, retries int, tiered bool) int {
	g, err := scgrid.New(strings.Split(backends, ","), scgrid.Config{
		Timeout:     timeout,
		MaxAttempts: retries,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: grid: %v\n", err)
		return 2
	}
	defer g.Close()
	sess, err := g.Session(scserve.Header{K: k, Params: params, Token: scserve.NewToken(), Tiered: tiered})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: grid: %v\n", err)
		return 2
	}
	defer sess.Close()
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := sess.SendBytes(buf[:n]); err != nil {
				fmt.Fprintf(os.Stderr, "sccheck: grid: %v\n", err)
				return 2
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "sccheck: read: %v\n", rerr)
			return 2
		}
	}
	v, err := sess.Finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: grid: %v\n", err)
		return 2
	}
	return reportVerdict(v)
}

// reportVerdict maps a service verdict onto sccheck's exit-code contract:
// 0 accepted, 1 rejected, 2 anything that is not a checker verdict (busy,
// protocol error) — so scripts can trust that exit 1 means an SC
// violation and exit 2 means the check itself did not happen.
func reportVerdict(v scserve.Verdict) int {
	switch v.Code {
	case scserve.VerdictAccept:
		fmt.Printf("accepted: %s\n", v.Msg)
		return 0
	case scserve.VerdictReject:
		fmt.Printf("REJECTED %s\n", v)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "sccheck: remote: %s\n", v)
		return 2
	}
}

// lintMain implements `sccheck lint`: Γ-lint over registered protocols.
func lintMain(args []string) int {
	fs := flag.NewFlagSet("sccheck lint", flag.ExitOnError)
	var (
		all      = fs.Bool("all", false, "lint every registered protocol")
		procs    = fs.Int("p", 2, "processors")
		blocks   = fs.Int("b", 2, "blocks")
		values   = fs.Int("v", 2, "values")
		queueCap = fs.Int("q", 1, "queue capacity for buffered protocols")
		states   = fs.Int("states", 20000, "max (state, shadow) pairs explored per protocol")
		runs     = fs.Int("runs", 10, "bandwidth-pass runs per protocol (negative disables)")
		steps    = fs.Int("steps", 60, "length of each bandwidth run")
		seed     = fs.Int64("seed", 1, "seed offset for the bandwidth pass")
		jsonOut  = fs.Bool("json", false, "emit reports as a JSON array")
		overK    = fs.Bool("overk", false, "warn when the declared k is never approached (GL012)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sccheck lint [-all] [flags] [protocol...]\nknown protocols: %v\n", registry.Names())
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	names := fs.Args()
	if *all {
		names = registry.Names()
	}
	if len(names) == 0 {
		fs.Usage()
		return 2
	}

	opts := registry.Options{
		Params:   trace.Params{Procs: *procs, Blocks: *blocks, Values: *values},
		QueueCap: *queueCap,
	}
	dirty := false
	var reports []*gammalint.Report
	for _, name := range names {
		t, err := registry.Build(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccheck lint: %v\n", err)
			return 2
		}
		rep := gammalint.Lint(t.Protocol, gammalint.Options{
			MaxStates:      *states,
			PoolSize:       t.PoolSize,
			Generator:      t.Generator,
			BandwidthRuns:  *runs,
			BandwidthSteps: *steps,
			Seed:           *seed,
			CheckOverK:     *overK,
		})
		reports = append(reports, rep)
		if len(rep.Findings) > 0 {
			dirty = true
		}
		if *jsonOut {
			continue
		}
		fmt.Println(rep)
		for _, f := range rep.Findings {
			fmt.Printf("  %s\n", f)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "sccheck lint: %v\n", err)
			return 2
		}
	}
	if dirty {
		return 1
	}
	return 0
}
