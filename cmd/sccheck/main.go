// Command sccheck runs the protocol-independent SC checker over a k-graph
// descriptor stream in the repository's binary wire format, read from a
// file or stdin. It decouples checking from observation: an observer
// embedded in a real system (or another tool entirely) can log its
// descriptor stream and have it adjudicated offline — the testing
// deployment sketched in Section 5 of Condon & Hu.
//
// Usage:
//
//	scexperiments ... | sccheck -k 12            # stream on stdin
//	sccheck -k 12 -in run.desc                   # stream from a file
//	sccheck -k 12 -in run.desc -text             # also print the stream
//
// Exit status: 0 accepted, 1 rejected, 2 usage/IO error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scverify/internal/checker"
	"scverify/internal/descriptor"
	"scverify/internal/trace"
)

func main() {
	var (
		k      = flag.Int("k", 0, "bandwidth bound (required; IDs range over 1..k+1)")
		in     = flag.String("in", "", "input file (default stdin)")
		text   = flag.Bool("text", false, "print the decoded stream in the paper's notation")
		procs  = flag.Int("p", 0, "optional: processors, enables parameter checking")
		blocks = flag.Int("b", 0, "optional: blocks")
		values = flag.Int("v", 0, "optional: values")
	)
	flag.Parse()

	if *k < 1 {
		fmt.Fprintln(os.Stderr, "sccheck: -k must be at least 1")
		os.Exit(2)
	}

	var data []byte
	var err error
	if *in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: read: %v\n", err)
		os.Exit(2)
	}

	stream, err := descriptor.Unmarshal(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccheck: decode: %v\n", err)
		os.Exit(2)
	}
	if *text {
		fmt.Println(stream.Text())
	}

	c := checker.New(*k)
	if *procs > 0 {
		c.SetParams(trace.Params{Procs: *procs, Blocks: *blocks, Values: *values})
	}
	for i, sym := range stream {
		if err := c.Step(sym); err != nil {
			fmt.Printf("REJECTED at symbol %d (%s): %v\n", i+1, sym.Text(), err)
			os.Exit(1)
		}
	}
	if err := c.Finish(); err != nil {
		fmt.Printf("REJECTED at end of stream: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("accepted: %d symbols describe an acyclic constraint graph for trace of %d operations\n",
		len(stream), len(stream.Trace()))
}
