// Command scgrid runs the grid proxy daemon: a wire-compatible scserve
// front that shards checking sessions across a pool of scserve backends.
// Unmodified clients (sccheck -server, sctest -server, RetryClient) point
// at the proxy and get health-checked dispatch, token-pinned resumption,
// and admission control for free; the proxy relays session bytes verbatim,
// so every delivered verdict is byte-for-byte a backend checker's verdict.
//
// Usage:
//
//	scgrid -addr :7542 -backends host1:7541,host2:7541,host3:7541
//	scgrid -bench -bench-out BENCH_scgrid.json   # self-contained scaling benchmark
//
// SIGINT/SIGTERM shuts the proxy down: the listener closes, relayed
// connections are severed (retrying clients absorb this as a transport
// fault), and the final per-backend stats are printed.
//
// Exit status: 0 clean serve/bench, 1 benchmark scaling regression, 2
// usage/IO error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"scverify/internal/descriptor"
	"scverify/internal/faultnet"
	"scverify/internal/scgrid"
	"scverify/internal/scserve"
)

// aggregated is the /json schema of the grid stats endpoint: the pool's
// own view plus each backend's live scserve stats (fetched over the stats
// frame; fetch errors are reported per backend, not fatal).
type aggregated struct {
	Grid     scgrid.GridStats         `json:"grid"`
	Backends map[string]scserve.Stats `json:"backends,omitempty"`
	Errors   map[string]string        `json:"errors,omitempty"`
}

// collect snapshots pool stats and polls every backend for its own stats.
func collect(g *scgrid.Grid, timeout time.Duration) aggregated {
	agg := aggregated{Grid: g.Stats(), Backends: map[string]scserve.Stats{}, Errors: map[string]string{}}
	for _, bs := range agg.Grid.Backends {
		c, err := scserve.DialTimeout(bs.Addr, timeout)
		if err != nil {
			agg.Errors[bs.Addr] = err.Error()
			continue
		}
		st, err := c.Stats()
		c.Close()
		if err != nil {
			agg.Errors[bs.Addr] = err.Error()
			continue
		}
		agg.Backends[bs.Addr] = st
	}
	return agg
}

// serveStats exposes the aggregated grid view over HTTP: plain text on
// "/", JSON on "/json".
func serveStats(addr string, g *scgrid.Grid, timeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		agg := collect(g, timeout)
		fmt.Fprintf(w, "grid: %d backends, %d healthy, %d draining, %d sheds, %d drain redirects\n",
			len(agg.Grid.Backends), agg.Grid.Healthy, agg.Grid.Draining, agg.Grid.Sheds, agg.Grid.DrainRedirects)
		for _, bs := range agg.Grid.Backends {
			fmt.Fprintf(w, "%s\n", bs)
			if st, ok := agg.Backends[bs.Addr]; ok {
				fmt.Fprintf(w, "  backend: %s\n", st)
			} else if msg, ok := agg.Errors[bs.Addr]; ok {
				fmt.Fprintf(w, "  backend: stats unavailable: %s\n", msg)
			}
		}
	})
	mux.HandleFunc("/json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(collect(g, timeout))
	})
	go http.Serve(ln, mux)
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7542", "proxy listen address")
		backends = flag.String("backends", "", "comma-separated scserve backend addresses (required for serving)")

		maxInFlight   = flag.Int("max-inflight", 32, "concurrent sessions per backend before queueing")
		queueDepth    = flag.Int("queue-depth", 64, "sessions allowed to wait for a slot before shedding")
		queueWait     = flag.Duration("queue-wait", 2*time.Second, "how long a queued session waits before shedding busy")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "health probe cadence for live backends")
		readmitDelay  = flag.Duration("readmit-delay", 3*time.Second, "base delay before re-probing an ejected backend")
		timeout       = flag.Duration("timeout", 10*time.Second, "per-operation backend I/O deadline")
		verbose       = flag.Bool("v", false, "log ejections, re-admissions, and failovers")
		structured    = flag.Bool("log", false, "emit structured (slog) dispatch events on stderr")
		statsAddr     = flag.String("stats-addr", "", "serve aggregated grid+backend stats over HTTP on this address")

		bench         = flag.Bool("bench", false, "run the self-contained scaling benchmark instead of serving")
		benchSessions = flag.Int("bench-sessions", 384, "benchmark: total sessions per backend-count row")
		benchWorkers  = flag.Int("bench-workers", 32, "benchmark: concurrent client workers")
		benchSymbols  = flag.Int("bench-symbols", 64, "benchmark: symbols per session")
		benchLatency  = flag.Duration("bench-latency", 4*time.Millisecond, "benchmark: simulated per-operation link latency ceiling")
		benchInFlight = flag.Int("bench-inflight", 8, "benchmark: per-backend in-flight cap")
		benchOut      = flag.String("bench-out", "BENCH_scgrid.json", "benchmark: JSON output file")
	)
	flag.Parse()

	if *bench {
		os.Exit(runBench(*benchSessions, *benchWorkers, *benchSymbols, *benchInFlight, *benchLatency, *benchOut))
	}

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "scgrid: -backends is required (comma-separated scserve addresses)")
		os.Exit(2)
	}
	cfg := scgrid.Config{
		MaxInFlight:   *maxInFlight,
		QueueDepth:    *queueDepth,
		QueueWait:     *queueWait,
		ProbeInterval: *probeInterval,
		ReadmitDelay:  *readmitDelay,
		Timeout:       *timeout,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	if *structured {
		cfg.Log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	g, err := scgrid.New(strings.Split(*backends, ","), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scgrid: %v\n", err)
		os.Exit(2)
	}
	defer g.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scgrid: listen: %v\n", err)
		os.Exit(2)
	}
	p := scgrid.NewProxy(g)
	g.ProbeNow()
	st := g.Stats()
	fmt.Printf("scgrid: proxy on %s over %d backends (%d healthy, %d in-flight/backend)\n",
		ln.Addr(), len(st.Backends), st.Healthy, *maxInFlight)
	if *statsAddr != "" {
		if err := serveStats(*statsAddr, g, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "scgrid: stats listen: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("scgrid: stats on http://%s/\n", *statsAddr)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("scgrid: %v: shutting down\n", s)
		p.Shutdown()
	}()

	if err := p.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "scgrid: serve: %v\n", err)
		os.Exit(2)
	}
	for _, bs := range g.Stats().Backends {
		fmt.Printf("scgrid: %s\n", bs)
	}
}

// benchRow is one backend-count measurement in BENCH_scgrid.json.
type benchRow struct {
	Backends       int     `json:"backends"`
	Sessions       int     `json:"sessions"`
	Accepts        int     `json:"accepts"`
	Rejects        int     `json:"rejects"`
	Sheds          int64   `json:"sheds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	SpeedupVs1     float64 `json:"speedup_vs_1"`
}

// benchResult is the BENCH_scgrid.json schema.
type benchResult struct {
	Bench             string     `json:"bench"`
	Note              string     `json:"note"`
	Workers           int        `json:"workers"`
	SymbolsPerSession int        `json:"symbols_per_session"`
	MaxInFlight       int        `json:"max_in_flight_per_backend"`
	LinkLatency       string     `json:"simulated_link_latency"`
	Rows              []benchRow `json:"rows"`
	Speedup4x         float64    `json:"speedup_4_backends_vs_1"`
}

// runBench measures aggregate grid throughput at 1, 2, and 4 in-process
// backends. Checking is I/O-bound in the deployment this models — each
// observer session crosses a network — so the benchmark makes the link,
// not the CPU, the bottleneck: every connection operation pays a seeded
// faultnet latency in [0, benchLatency], and each backend admits at most
// benchInFlight concurrent sessions (the client-side mirror of a real
// backend's capacity). Under that regime aggregate sessions/s is set by
// total slots × per-session latency, which is exactly what adding
// backends buys; the measured speedup is the fabric's dispatch working,
// not loopback CPU parallelism (which a single-core host cannot offer).
func runBench(sessions, workers, symbols, inflight int, latency time.Duration, out string) int {
	accWire := descriptor.Marshal(scserve.SyntheticAccept(symbols))
	rejStream, rejIdx := scserve.SyntheticReject(symbols - 4)
	rejWire := descriptor.Marshal(rejStream)

	res := benchResult{
		Bench:             "scgrid",
		Note:              "latency-bound loopback scaling: per-op simulated link latency + per-backend in-flight caps; speedup reflects dispatch across backends, not CPU parallelism",
		Workers:           workers,
		SymbolsPerSession: symbols,
		MaxInFlight:       inflight,
		LinkLatency:       latency.String(),
	}

	for _, nb := range []int{1, 2, 4} {
		// Fresh backends per row so counters and checkpoint stores start cold.
		var srvs []*scserve.Server
		var lns []net.Listener
		var addrs []string
		for i := 0; i < nb; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "scgrid bench: listen: %v\n", err)
				return 2
			}
			srv := scserve.New(scserve.Config{MaxSessions: inflight + 8, AckInterval: 1024})
			go srv.Serve(ln)
			srvs = append(srvs, srv)
			lns = append(lns, ln)
			addrs = append(addrs, ln.Addr().String())
		}

		fd := faultnet.NewDialer(faultnet.Config{
			Seed:        int64(100 + nb),
			LatencyProb: 1,
			Latency:     latency,
		})
		g, err := scgrid.New(addrs, scgrid.Config{
			Seed:          int64(nb),
			MaxInFlight:   inflight,
			QueueDepth:    workers + 8,
			QueueWait:     time.Minute, // the bench queues, never sheds
			ProbeInterval: -1,
			Dial:          scgrid.Dialer(fd.DialContext),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scgrid bench: %v\n", err)
			return 2
		}

		var mu sync.Mutex
		accepts, rejects, failures := 0, 0, 0
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			share := sessions / workers
			if w < sessions%workers {
				share++
			}
			wg.Add(1)
			go func(w, share int) {
				defer wg.Done()
				localA, localR, localF := 0, 0, 0
				for i := 0; i < share; i++ {
					reject := (w+i)%8 == 7
					wire := accWire
					if reject {
						wire = rejWire
					}
					s, err := g.Session(scserve.SyntheticHeader())
					if err == nil {
						err = s.SendBytes(wire)
					}
					var v scserve.Verdict
					if err == nil {
						v, err = s.Finish()
					}
					switch {
					case err != nil,
						reject && (v.Code != scserve.VerdictReject || v.Symbol != rejIdx),
						!reject && v.Code != scserve.VerdictAccept:
						localF++
					case reject:
						localR++
					default:
						localA++
					}
				}
				mu.Lock()
				accepts += localA
				rejects += localR
				failures += localF
				mu.Unlock()
			}(w, share)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := g.Stats()
		g.Close()
		for i, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx)
			cancel()
			lns[i].Close()
		}

		if failures > 0 {
			fmt.Fprintf(os.Stderr, "scgrid bench: %d sessions failed or returned wrong verdicts at %d backends\n", failures, nb)
			return 2
		}
		row := benchRow{
			Backends:       nb,
			Sessions:       sessions,
			Accepts:        accepts,
			Rejects:        rejects,
			Sheds:          st.Sheds,
			ElapsedSeconds: elapsed.Seconds(),
			SessionsPerSec: float64(sessions) / elapsed.Seconds(),
		}
		if len(res.Rows) > 0 {
			row.SpeedupVs1 = row.SessionsPerSec / res.Rows[0].SessionsPerSec
		} else {
			row.SpeedupVs1 = 1
		}
		res.Rows = append(res.Rows, row)
		fmt.Printf("scgrid bench: %d backend(s): %d sessions in %.2fs — %.0f sessions/s (%.2fx)\n",
			nb, sessions, row.ElapsedSeconds, row.SessionsPerSec, row.SpeedupVs1)
	}

	res.Speedup4x = res.Rows[len(res.Rows)-1].SpeedupVs1
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scgrid bench: %v\n", err)
		return 2
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scgrid bench: write %s: %v\n", out, err)
		return 2
	}
	fmt.Printf("scgrid bench: 4-backend speedup %.2fx (%s)\n", res.Speedup4x, out)
	if res.Speedup4x < 2 {
		fmt.Fprintln(os.Stderr, "scgrid bench: scaling regression: 4 backends deliver < 2x the 1-backend throughput")
		return 1
	}
	return 0
}
