// Command scvet runs the repository's soundness analyzers (package scvet)
// over Go package directories.
//
// Usage:
//
//	scvet [-json] dir [dir...]
//
// Each argument is a package directory, or a "dir/..." pattern walked
// recursively (testdata, vendor and hidden directories are skipped).
// Exit status: 0 clean, 1 findings reported, 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scverify/internal/scvet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scvet [-json] dir [dir/...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	findings, err := scvet.Run(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "scvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
