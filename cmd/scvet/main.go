// Command scvet runs the repository's soundness analyzers (package scvet)
// over Go package directories.
//
// Usage:
//
//	scvet [-json] [-rules sel] dir [dir...]
//
// Each argument is a package directory, or a "dir/..." pattern walked
// recursively (testdata, vendor and hidden directories are skipped).
// -rules selects a comma-separated subset of analyzers by name or rule ID
// ("guardedby,SV005"); the default is the full suite. When findings are
// reported, the final stderr line is a rule-tagged summary
// ("scvet: 3 findings [SV004 x2, SV007 x1]") so build logs show at a
// glance which invariants broke.
// Exit status: 0 clean, 1 findings reported, 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scverify/internal/scvet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.String("rules", "", "comma-separated analyzer names or rule IDs to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scvet [-json] [-rules sel] dir [dir/...]\nanalyzers:\n")
		for _, a := range scvet.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %v  %s\n", a.Name, a.Rules, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	as, err := scvet.SelectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := scvet.RunAnalyzers(args, as)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "scvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintln(os.Stderr, scvet.Summary(findings))
		os.Exit(1)
	}
}
