# Tier-1 verification: everything CI runs on every change. `make` or
# `make tier1` must pass before merging.

GO ?= go

.PHONY: tier1 build vet vet-full test race scvet lint witness fuzz-burst smoke-serve smoke-grid smoke-drain smoke-history smoke-tier smoke-mc chaos chaos-grid soak bench-serve bench-grid bench-hist bench-tier bench-mc bench-all clean

tier1: build vet-full race witness smoke-serve smoke-grid smoke-drain smoke-history smoke-tier smoke-mc chaos fuzz-burst

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet-full: the whole static-verification surface in one target — the
# toolchain's vet, the repo's own scvet suite (SV001–SV007) self-applied,
# and Γ-membership linting of every registered protocol.
vet-full: vet scvet lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# scvet: the repo's own soundness analyzers (map order in encodings,
# clone completeness, lock discipline, wire-flag hygiene, verdict
# transparency, atomic/plain mixing) applied to the repo itself. Fails
# with a rule-tagged summary line on any finding.
scvet:
	$(GO) run ./cmd/scvet ./...

# lint: Γ-membership linting of every registered protocol.
lint:
	$(GO) run ./cmd/sccheck lint -all

# witness: the golden counterexample explanations for the built-in non-SC
# protocols, plus the minimizer's 1-minimality/certification contract.
# Regenerate goldens with: go test ./internal/witness -run Golden -update
witness:
	$(GO) test -run='TestGoldenExplanations|TestMinimizedWitnessProperties' -count=1 ./internal/witness

# fuzz-burst: a short CI-budget run of each fuzz target; regressions in
# the corpus replay in normal `go test`, this additionally explores.
FUZZTIME ?= 5s

fuzz-burst:
	$(GO) test -run='^$$' -fuzz=FuzzCheckerAgainstOffline -fuzztime=$(FUZZTIME) ./internal/checker
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME) ./internal/descriptor
	$(GO) test -run='^$$' -fuzz=FuzzTrackerAndDecode -fuzztime=$(FUZZTIME) ./internal/descriptor
	$(GO) test -run='^$$' -fuzz=FuzzDecoder -fuzztime=$(FUZZTIME) ./internal/descriptor
	$(GO) test -run='^$$' -fuzz=FuzzFrameParser -fuzztime=$(FUZZTIME) ./internal/scserve
	$(GO) test -run='^$$' -fuzz=FuzzServerConn -fuzztime=$(FUZZTIME) ./internal/scserve
	$(GO) test -run='^$$' -fuzz=FuzzResumeFrame -fuzztime=$(FUZZTIME) ./internal/scserve
	$(GO) test -run='^$$' -fuzz=FuzzRetryClient -fuzztime=$(FUZZTIME) ./internal/scserve
	$(GO) test -run='^$$' -fuzz=FuzzTierVerdictFrame -fuzztime=$(FUZZTIME) ./internal/scserve
	$(GO) test -run='^$$' -fuzz=FuzzExploreFrame -fuzztime=$(FUZZTIME) ./internal/scserve
	$(GO) test -run='^$$' -fuzz=FuzzMinimizer -fuzztime=$(FUZZTIME) ./internal/witness
	$(GO) test -run='^$$' -fuzz=FuzzHistoryJSONL -fuzztime=$(FUZZTIME) ./internal/history
	$(GO) test -run='^$$' -fuzz=FuzzHistoryEDN -fuzztime=$(FUZZTIME) ./internal/history

# smoke-serve: race-enabled client↔server smoke of the scserve session
# service — 64 concurrent sessions with exact verdict positions, plus the
# graceful-shutdown drain guarantees.
smoke-serve:
	$(GO) test -race -run='TestServerConcurrentSessions|TestGracefulShutdown' -count=1 ./internal/scserve

# smoke-grid: race-enabled smoke of the scgrid dispatch fabric — three
# backends, a campaign of mixed sessions, one backend hard-killed
# mid-campaign. Every delivered verdict must equal the local checker's.
# Deterministic and <5s.
smoke-grid:
	$(GO) test -race -run='TestGridSmokeKillBackend' -count=1 ./internal/scgrid

# smoke-drain: race-enabled smoke of zero-downtime live operations — a
# registry campaign through a three-backend grid with one backend drained
# mid-campaign over clean links. Drain may redirect sessions but must
# never cost a verdict or surface as an error. Deterministic and <5s.
smoke-drain:
	$(GO) test -race -run='TestGridSmokeDrainBackend' -count=1 ./internal/sctest

# smoke-history: race-enabled smoke of the operation-history pipeline —
# a deterministic campaign of generated replicated-KV histories where
# every anomaly-free history must be accepted and every injected anomaly
# (stale read, read-your-writes, partition ⊥, phantom read) must be
# rejected with its expected constraint code, adjudicated in-process AND
# through a three-backend scgrid fabric; plus the history exit-code
# contract (0/1/2) across local, -server, and -grid modes.
smoke-history:
	$(GO) test -race -run='TestHistorySmokeCampaign|TestHistoryRemoteChecker' -count=1 ./internal/sctest
	$(GO) test -race -run='TestHistoryExitCodes' -count=1 ./cmd/sccheck

# smoke-tier: race-enabled smoke of the tiered-verdict surface — a tiered
# protocol campaign and a tiered history campaign through a three-backend
# scgrid fabric, every wire tier cross-checked against the identical local
# adjudication (one disagreement fails), storebuffer rejections required
# to land on the TSO tier and every injected anomaly on its kind's
# declared tier.
smoke-tier:
	$(GO) test -race -run='TestTierSmokeGrid' -count=1 ./internal/sctest

# smoke-mc: race-enabled smoke of the scmc distributed model-checking
# fabric — a 2-backend grid verification whose state count must equal the
# single-node checker's, a grid run on a buggy protocol that must report
# the violation, and a backend killed mid-exploration that must degrade
# to incomplete, never verified. Deterministic and <5s.
smoke-mc:
	$(GO) test -race -run='TestSmokeGrid$$|TestGridDetectsViolation|TestGridBackendDeathIsIncomplete' -count=1 ./internal/scmc

# chaos: the fault-tolerance acceptance test — the full protocol registry
# adjudicated through a fault-injected link (fragmented writes, short
# reads, latency spikes, forced connection cuts every ~20 KiB). Every
# verdict delivered through the chaos must equal the local checker's;
# faults may only degrade to errors, never to wrong answers. Deterministic
# and ~10s.
chaos:
	$(GO) test -run='TestChaosSoakRegistry' -count=1 ./internal/sctest

# chaos-grid: the multi-backend version of chaos — the registry campaign
# sharded across three fault-injected backends, one hard-killed and later
# restarted mid-campaign (asserting resumes, ejections, AND failovers
# occurred, with zero wrong verdicts), plus the rolling-restart soak that
# walks a drain → kill-while-draining → cold-restart cycle across the
# whole pool and demands an undrained full rejoin.
chaos-grid:
	$(GO) test -run='TestGridChaosSoakRegistry|TestGridRollingRestartSoak' -count=1 ./internal/sctest

# soak: the long randomized version of chaos (SOAK sets the duration).
SOAK ?= 2m

soak:
	SCSERVE_SOAK=$(SOAK) $(GO) test -run='TestChaosSoakRegistry' -count=1 -v -timeout=0 ./internal/sctest

# bench-serve: throughput of the scserve service on the loopback
# (sessions/s, symbols/s), written to BENCH_scserve.json.
BENCH_SESSIONS ?= 256
BENCH_WORKERS  ?= 64
BENCH_SYMBOLS  ?= 5000

bench-serve:
	$(GO) run ./cmd/scserve -bench -bench-sessions=$(BENCH_SESSIONS) \
		-bench-workers=$(BENCH_WORKERS) -bench-symbols=$(BENCH_SYMBOLS) \
		-bench-out=BENCH_scserve.json

# bench-grid: aggregate sessions/s through the scgrid fabric at 1, 2 and
# 4 backends over a simulated-latency loopback link, written to
# BENCH_scgrid.json. Exits non-zero if 4 backends fail to reach 2x the
# single-backend throughput.
bench-grid:
	$(GO) run ./cmd/scgrid -bench -bench-out=BENCH_scgrid.json

# bench-hist: end-to-end history-ingestion throughput (parse canonical
# JSONL → lower → check; histories/s and ops/s for a clean and an
# anomalous arm), written to BENCH_schist.json.
BENCH_HISTORIES ?= 2000
BENCH_HIST_OPS  ?= 200

bench-hist:
	$(GO) run ./cmd/sccheck history -bench -bench-histories=$(BENCH_HISTORIES) \
		-bench-ops=$(BENCH_HIST_OPS) -bench-out=BENCH_schist.json

# bench-tier: weaker-model adjudication throughput (one arm per ladder
# rung on its canonical litmus core, plus an end-to-end anomalous-history
# arm), written to BENCH_sctier.json. Every arm asserts its expected tier
# on every iteration, so the bench doubles as a tier-stability check.
BENCH_TIER_N ?= 2000

bench-tier:
	$(GO) run ./cmd/sccheck -tier -bench -bench-n=$(BENCH_TIER_N) \
		-bench-out=BENCH_sctier.json

# bench-mc: distributed exploration scaling at 1, 2 and 4 loopback
# backends under the simulated-latency methodology (one explore worker
# per backend, fixed per-expansion delay), written to BENCH_scverify.json.
# Every arm must reproduce the single-node state count exactly; exits
# non-zero if 4 backends fail to reach 2x the single-backend states/s.
bench-mc:
	$(GO) run ./cmd/scverify -bench -bench-out=BENCH_scverify.json

# bench-all: regenerate every committed BENCH_*.json artifact.
bench-all: bench-serve bench-grid bench-hist bench-tier bench-mc

clean:
	$(GO) clean ./...
