# Tier-1 verification: everything CI runs on every change. `make` or
# `make tier1` must pass before merging.

GO ?= go

.PHONY: tier1 build vet test race scvet lint fuzz-burst clean

tier1: build vet race scvet lint fuzz-burst

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# scvet: the repo's own soundness analyzers (map order in encodings,
# clone completeness) applied to the repo itself.
scvet:
	$(GO) run ./cmd/scvet ./...

# lint: Γ-membership linting of every registered protocol.
lint:
	$(GO) run ./cmd/sccheck lint -all

# fuzz-burst: a short CI-budget run of each fuzz target; regressions in
# the corpus replay in normal `go test`, this additionally explores.
FUZZTIME ?= 5s

fuzz-burst:
	$(GO) test -run='^$$' -fuzz=FuzzCheckerAgainstOffline -fuzztime=$(FUZZTIME) ./internal/checker
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME) ./internal/descriptor
	$(GO) test -run='^$$' -fuzz=FuzzTrackerAndDecode -fuzztime=$(FUZZTIME) ./internal/descriptor

clean:
	$(GO) clean ./...
